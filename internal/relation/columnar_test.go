package relation

import (
	"math/rand"
	"testing"
)

// randomTable builds a table with mixed-kind columns, NULL dirt, and values
// drawn from small domains so joins and groups collide (nullFrac ~ 0.3 makes
// a NULL-heavy dirty table).
func randomTable(t *testing.T, rng *rand.Rand, name string, nRows int, nullFrac float64) *Table {
	t.Helper()
	schema := NewSchema(
		Cat("k", KindInt),
		Cat("s", KindString),
		Num("v", KindFloat),
		Cat("m", KindFloat), // categorical float: mixed int/float grouping
	)
	tab := NewTable(name, schema)
	for i := 0; i < nRows; i++ {
		row := make([]Value, 4)
		if rng.Float64() < nullFrac {
			row[0] = Null()
		} else {
			row[0] = IntValue(int64(rng.Intn(6)))
		}
		if rng.Float64() < nullFrac {
			row[1] = Null()
		} else {
			row[1] = StringValue(string(rune('a' + rng.Intn(4))))
		}
		if rng.Float64() < nullFrac {
			row[2] = Null()
		} else {
			row[2] = FloatValue(rng.Float64() * 10)
		}
		// m mixes IntValue(x) and FloatValue(x) for the same small x: the
		// row path groups them together via AppendKey normalization, and
		// the dictionary must do the same.
		x := rng.Intn(4)
		if rng.Float64() < nullFrac {
			row[3] = Null()
		} else if rng.Intn(2) == 0 {
			row[3] = IntValue(int64(x))
		} else {
			row[3] = FloatValue(float64(x))
		}
		tab.Append(row)
	}
	return tab
}

func tablesEqual(t *testing.T, want, got *Table) {
	t.Helper()
	if !want.Schema.Equal(got.Schema) {
		t.Fatalf("schema mismatch: want %v, got %v", want.Schema, got.Schema)
	}
	if want.NumRows() != got.NumRows() {
		t.Fatalf("row count mismatch: want %d, got %d", want.NumRows(), got.NumRows())
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if !want.Rows[i][j].EqualValue(got.Rows[i][j]) {
				t.Fatalf("row %d col %d: want %v, got %v", i, j, want.Rows[i][j], got.Rows[i][j])
			}
		}
	}
}

func TestColumnarRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := randomTable(t, rng, "rt", 200, 0.3)
	c := ToColumnar(tab)
	if c.NumRows() != tab.NumRows() {
		t.Fatalf("NumRows = %d, want %d", c.NumRows(), tab.NumRows())
	}
	tablesEqual(t, tab, c.ToTable())
	// NULL is always code 0.
	for i := range tab.Rows {
		for j := range tab.Rows[i] {
			if tab.Rows[i][j].IsNull() != (c.Codes(j)[i] == 0) {
				t.Fatalf("row %d col %d: NULL must be code 0", i, j)
			}
			if tab.Rows[i][j].IsNull() != c.IsNullAt(i, j) {
				t.Fatalf("row %d col %d: IsNullAt mismatch", i, j)
			}
		}
	}
}

func TestColumnarDictMergesIntAndFloat(t *testing.T) {
	tab := NewTable("m", NewSchema(Cat("x", KindFloat)))
	tab.AppendValues(IntValue(3))
	tab.AppendValues(FloatValue(3.0))
	tab.AppendValues(FloatValue(3.5))
	tab.AppendValues(IntValue(300)) // past the small-int fast path? still small
	tab.AppendValues(FloatValue(300.0))
	tab.AppendValues(IntValue(1 << 40))
	tab.AppendValues(FloatValue(float64(int64(1) << 40)))
	c := ToColumnar(tab)
	codes := c.Codes(0)
	if codes[0] != codes[1] {
		t.Fatalf("IntValue(3) and FloatValue(3.0) got codes %d and %d", codes[0], codes[1])
	}
	if codes[0] == codes[2] {
		t.Fatal("3 and 3.5 must not share a code")
	}
	if codes[3] != codes[4] {
		t.Fatalf("IntValue(300)/FloatValue(300.0) got codes %d and %d", codes[3], codes[4])
	}
	if codes[5] != codes[6] {
		t.Fatalf("IntValue(1<<40)/FloatValue(1<<40) got codes %d and %d", codes[5], codes[6])
	}
}

func TestColumnarGroupByMatchesGroupIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		tab := randomTable(t, rng, "g", 50+rng.Intn(150), 0.35)
		c := ToColumnar(tab)
		for _, cols := range [][]string{{"k"}, {"m"}, {"k", "s"}, {"k", "s", "m"}} {
			rowGroups, err := tab.GroupIndices(cols...)
			if err != nil {
				t.Fatal(err)
			}
			ordered, err := tab.GroupRowLists(cols...)
			if err != nil {
				t.Fatal(err)
			}
			idx := tab.Schema.MustIndexes(cols...)
			g, err := c.GroupBy(idx)
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != len(rowGroups) {
				t.Fatalf("cols %v: %d groups, want %d", cols, g.N(), len(rowGroups))
			}
			// First-appearance order and membership must match the ordered
			// row-path grouping exactly.
			starts, rows := g.RowLists()
			for gid := 0; gid < g.N(); gid++ {
				want := ordered[gid]
				got := rows[starts[gid]:starts[gid+1]]
				if len(want) != len(got) {
					t.Fatalf("cols %v group %d: size %d, want %d", cols, gid, len(got), len(want))
				}
				if int64(len(want)) != g.Counts[gid] {
					t.Fatalf("cols %v group %d: count %d, want %d", cols, gid, g.Counts[gid], len(want))
				}
				for i := range want {
					if int32(want[i]) != got[i] {
						t.Fatalf("cols %v group %d row %d: %d, want %d", cols, gid, i, got[i], want[i])
					}
				}
				if g.First[gid] != int32(want[0]) {
					t.Fatalf("cols %v group %d: first %d, want %d", cols, gid, g.First[gid], want[0])
				}
			}
		}
	}
}

func TestEquiJoinColumnarMatchesRowJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		a := randomTable(t, rng, "A", 40+rng.Intn(120), 0.3)
		b := randomTable(t, rng, "B", 40+rng.Intn(120), 0.3)
		for _, on := range [][]string{{"k"}, {"m"}, {"k", "s"}} {
			want, err := EquiJoin(a, b, on)
			if err != nil {
				t.Fatal(err)
			}
			got, err := EquiJoinColumnar(ToColumnar(a), ToColumnar(b), on, nil)
			if err != nil {
				t.Fatal(err)
			}
			tablesEqual(t, want, got.ToTable())

			// A prebuilt index must give the same result.
			idx, err := ToColumnar(b).BuildJoinIndex(on...)
			if err != nil {
				t.Fatal(err)
			}
			got2, err := EquiJoinColumnar(ToColumnar(a), ToColumnar(b), on, idx)
			if err != nil {
				t.Fatal(err)
			}
			tablesEqual(t, want, got2.ToTable())
		}
	}
}

func TestEquiJoinColumnarMixedIntFloatKeys(t *testing.T) {
	// Build side stores IntValue keys, probe side FloatValue keys: the
	// grouping rule IntValue(3) == FloatValue(3.0) must survive dictionary
	// encoding on both sides of the join.
	a := NewTable("A", NewSchema(Cat("k", KindFloat), Cat("av", KindString)))
	a.AppendValues(FloatValue(1.0), StringValue("x"))
	a.AppendValues(FloatValue(2.0), StringValue("y"))
	a.AppendValues(FloatValue(2.5), StringValue("z"))
	b := NewTable("B", NewSchema(Cat("k", KindInt), Cat("bv", KindString)))
	b.AppendValues(IntValue(2), StringValue("p"))
	b.AppendValues(IntValue(1), StringValue("q"))
	want, err := EquiJoin(a, b, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if want.NumRows() != 2 {
		t.Fatalf("row join found %d rows, want 2", want.NumRows())
	}
	got, err := EquiJoinColumnar(ToColumnar(a), ToColumnar(b), []string{"k"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, want, got.ToTable())
}

func TestColumnarFilterRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tab := randomTable(t, rng, "f", 100, 0.3)
	c := ToColumnar(tab)
	keep := []int32{0, 5, 5, 99, 42}
	got := c.FilterRows(keep).ToTable()
	want := tab.SelectIndices([]int{0, 5, 5, 99, 42})
	tablesEqual(t, want, got)
	if c.FilterRows(nil).NumRows() != 0 {
		t.Fatal("FilterRows(nil) must be empty")
	}
}

func TestToColumnarSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := randomTable(t, rng, "s", 80, 0.3)
	c, err := ToColumnarSubset(tab, []string{"k", "s"}, []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	ki := tab.Schema.Index("k")
	if c.Codes(ki) == nil {
		t.Fatal("coded column k missing codes")
	}
	vi := tab.Schema.Index("v")
	if c.Codes(vi) != nil {
		t.Fatal("numeric column v should not be coded")
	}
	// AppendNumeric must match the row-path extraction (non-NULLs in order).
	var want []float64
	for _, r := range tab.Rows {
		if !r[vi].IsNull() {
			want = append(want, r[vi].Num())
		}
	}
	got := c.AppendNumeric(nil, vi, nil)
	if len(want) != len(got) {
		t.Fatalf("numeric length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("numeric[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := ToColumnarSubset(tab, []string{"nope"}, nil); err == nil {
		t.Fatal("unknown coded column should error")
	}
	if _, err := ToColumnarSubset(tab, nil, []string{"nope"}); err == nil {
		t.Fatal("unknown numeric column should error")
	}
}

func TestEquiJoinPreallocUnchanged(t *testing.T) {
	// Guard for the EquiJoin preallocation rewrite: duplicate keys on both
	// sides (bag semantics) and no-match rows.
	a := NewTable("A", NewSchema(Cat("k", KindInt), Cat("av", KindInt)))
	b := NewTable("B", NewSchema(Cat("k", KindInt), Cat("bv", KindInt)))
	for i := 0; i < 6; i++ {
		a.AppendValues(IntValue(int64(i%3)), IntValue(int64(i)))
		b.AppendValues(IntValue(int64(i%2)), IntValue(int64(10+i)))
	}
	j, err := EquiJoin(a, b, []string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	// k=0: 2 a-rows × 3 b-rows; k=1: 2 × 3; k=2: 2 × 0.
	if j.NumRows() != 12 {
		t.Fatalf("join rows = %d, want 12", j.NumRows())
	}
	if got := cap(j.Rows); got != 12 {
		t.Fatalf("rows capacity = %d, want exactly 12 (preallocated)", got)
	}
}
