package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV serializes the table to w. The header encodes each column as
// "name:kind[:cat]" so ReadCSV can round-trip types exactly.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.Schema.Len())
	for i := 0; i < t.Schema.Len(); i++ {
		c := t.Schema.Column(i)
		h := c.Name + ":" + c.Kind.String()
		if c.Categorical {
			h += ":cat"
		}
		header[i] = h
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("relation: write csv header: %w", err)
	}
	rec := make([]string, t.Schema.Len())
	for _, row := range t.Rows {
		for i, v := range row {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("relation: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a table previously written by WriteCSV.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: read csv header: %w", err)
	}
	cols := make([]Column, len(header))
	for i, h := range header {
		parts := strings.Split(h, ":")
		c := Column{Name: parts[0], Kind: KindString}
		if len(parts) >= 2 {
			switch parts[1] {
			case "string":
				c.Kind = KindString
			case "int":
				c.Kind = KindInt
			case "float":
				c.Kind = KindFloat
			case "null":
				c.Kind = KindNull
			default:
				return nil, fmt.Errorf("relation: unknown kind %q in csv header", parts[1])
			}
		}
		if len(parts) >= 3 && parts[2] == "cat" {
			c.Categorical = true
		}
		cols[i] = c
	}
	t := NewTable(name, NewSchema(cols...))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: read csv row: %w", err)
		}
		row := make([]Value, len(cols))
		for i, s := range rec {
			v, err := ParseValue(s, cols[i].Kind)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		t.Append(row)
	}
	return t, nil
}
