package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParseSpec parses the compact workload grammar used by `datagen -workload`
// and the CI scenario matrix:
//
//	topology:size[,option=value...]
//
// where topology is chain, star or snowflake; size is the chain's hop count
// or the star/snowflake branch count; and options override DefaultSpec:
//
//	rows=N      base listing rows            keys=N    key-domain size
//	classes=N   latent classes               noise=F   label-flip probability
//	skew=F      Zipf s of the base key draw  null=F    NULL-key row fraction
//	kinds=S     int | string | mixed         decoys=N  uncorrelated listings
//	attrs=N     noise attributes per listing fanout=N  rows per key
//	price=S     entropy | flat | tiered
//
// Example: "snowflake:3,rows=800,kinds=mixed,null=0.05,skew=1.3,price=tiered".
// ParseSpec(s.String()) round-trips every valid spec.
func ParseSpec(s string) (Spec, error) {
	parts := strings.Split(s, ",")
	head := strings.SplitN(strings.TrimSpace(parts[0]), ":", 2)
	if len(head) != 2 {
		return Spec{}, fmt.Errorf("workload: spec %q must start with topology:size", s)
	}
	size, err := strconv.Atoi(head[1])
	if err != nil {
		return Spec{}, fmt.Errorf("workload: bad size in %q: %w", parts[0], err)
	}
	spec := DefaultSpec(Topology(head[0]), size)
	for _, opt := range parts[1:] {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			continue
		}
		kv := strings.SplitN(opt, "=", 2)
		if len(kv) != 2 {
			return Spec{}, fmt.Errorf("workload: malformed option %q (want key=value)", opt)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		var perr error
		num := func() int {
			n, err := strconv.Atoi(val)
			perr = err
			return n
		}
		fnum := func() float64 {
			f, err := strconv.ParseFloat(val, 64)
			perr = err
			return f
		}
		switch key {
		case "rows":
			spec.Rows = num()
		case "keys":
			spec.Keys = num()
		case "classes":
			spec.Classes = num()
		case "noise":
			spec.Noise = fnum()
		case "skew":
			spec.Skew = fnum()
		case "null":
			spec.NullRate = fnum()
		case "kinds":
			spec.KeyKinds = val
		case "decoys":
			spec.Decoys = num()
		case "attrs":
			spec.ExtraAttrs = num()
		case "fanout":
			spec.Fanout = num()
		case "price":
			spec.PriceFamily = val
		default:
			return Spec{}, fmt.Errorf("workload: unknown option %q", key)
		}
		if perr != nil {
			return Spec{}, fmt.Errorf("workload: bad value for %q: %w", key, perr)
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// String renders the spec in the canonical grammar, defaults included, so
// specs diff cleanly and ParseSpec round-trips.
func (s Spec) String() string {
	opts := map[string]string{
		"rows":    strconv.Itoa(s.Rows),
		"keys":    strconv.Itoa(s.Keys),
		"classes": strconv.Itoa(s.Classes),
		"noise":   trimFloat(s.Noise),
		"skew":    trimFloat(s.Skew),
		"null":    trimFloat(s.NullRate),
		"kinds":   s.KeyKinds,
		"decoys":  strconv.Itoa(s.Decoys),
		"attrs":   strconv.Itoa(s.ExtraAttrs),
		"fanout":  strconv.Itoa(s.Fanout),
		"price":   s.PriceFamily,
	}
	keys := make([]string, 0, len(opts))
	for k := range opts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d", s.Topology, s.Size)
	for _, k := range keys {
		fmt.Fprintf(&b, ",%s=%s", k, opts[k])
	}
	return b.String()
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
