// Package workload generates synthetic marketplaces with *planted*
// correlations: from a seed and a Spec it builds a catalog of relational
// listings whose join graph hides one known correlation between an attribute
// x (sold by the "base" listing) and an attribute y (sold at the end of a
// chosen join path), and reports the ground truth — the planted correlation
// as actually measurable on the full join, the cheapest correct purchase
// plan, and that plan's exact price under the marketplace's pricing model.
//
// The paper evaluates DANCE only on TPC-H- and TPC-E-shaped marketplaces;
// this package opens the scenario surface: chain, star and snowflake join
// topologies, skewed and NULL-ridden join keys of mixed types, decoy
// listings that sell nothing useful, and several price-curve families. A
// workload is a pure function of (seed, spec): generation touches a single
// PRNG in a fixed order, so the emitted marketplace is byte-identical across
// runs (see TestGenerateDeterministic), which is what lets CI assert
// recovery rates over a seed sweep.
//
// Construction (see DESIGN.md "Synthetic workloads"): every key level has
// the same domain size K. A latent class c(k₀) = k₀ mod Classes lives on the
// base key; each hop of the planted path relabels keys by a seeded
// bijection, so the class survives every join; the terminal listing maps its
// key to a class label y, flipped to a random label with probability Noise.
// The base listing's x is numeric with class-dependent mean. Everything else
// — decoys, extra attributes, NULL rows, fanout duplicates — is noise the
// search has to see through.
package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sort"

	"github.com/dance-db/dance/internal/fd"
	"github.com/dance-db/dance/internal/infotheory"
	"github.com/dance-db/dance/internal/marketplace"
	"github.com/dance-db/dance/internal/pricing"
	"github.com/dance-db/dance/internal/relation"
)

// Topology names the join-graph shape of the planted path.
type Topology string

// The three topology families. Chain is a single path base → hop₁ → … →
// goal; Star joins base to a hub that fans out to Size spokes (one of which
// sells y); Snowflake extends each spoke by one more dimension hop, with y
// on the planted leaf.
const (
	Chain     Topology = "chain"
	Star      Topology = "star"
	Snowflake Topology = "snowflake"
)

// Spec parameterizes one synthetic marketplace. The zero value is not
// usable; start from DefaultSpec or ParseSpec.
type Spec struct {
	// Topology is the join-graph shape.
	Topology Topology
	// Size is the topology's extent: path hops past the base for Chain
	// (chain:3 = base → hop1 → hop2 → goal), branch count for Star and
	// Snowflake.
	Size int
	// Rows is the base listing's row count.
	Rows int
	// Keys is the join-key domain size at every level.
	Keys int
	// Classes is the latent-class count the correlation is planted on.
	Classes int
	// Noise is the per-key probability that the terminal's y label is
	// flipped to a uniformly random class label (0 = perfectly planted).
	Noise float64
	// Skew is the Zipf s-parameter of the base table's key draw; values
	// ≤ 1 mean uniform (rand.Zipf requires s > 1).
	Skew float64
	// NullRate appends this fraction of extra rows with a NULL join key to
	// every non-base listing (dirty marketplaces).
	NullRate float64
	// KeyKinds is "int", "string", or "mixed" (levels cycle
	// int → string → float).
	KeyKinds string
	// Decoys is the number of extra listings that join the planted path
	// but sell only uncorrelated attributes.
	Decoys int
	// ExtraAttrs adds this many noise attributes to every listing.
	ExtraAttrs int
	// Fanout emits this many rows per key in every non-base listing
	// (per-row extra attributes differ, join pairs repeat).
	Fanout int
	// PriceFamily selects the marketplace pricing model: "entropy"
	// (arbitrage-free default), "flat" (content-blind), or "tiered"
	// (entropy scaled by a per-listing premium).
	PriceFamily string
}

// DefaultSpec returns the baseline spec of a topology: moderate size, clean
// keys, mild label noise, entropy pricing.
func DefaultSpec(topo Topology, size int) Spec {
	return Spec{
		Topology:    topo,
		Size:        size,
		Rows:        600,
		Keys:        36,
		Classes:     5,
		Noise:       0.08,
		Skew:        0,
		NullRate:    0,
		KeyKinds:    "int",
		Decoys:      2,
		ExtraAttrs:  1,
		Fanout:      1,
		PriceFamily: "entropy",
	}
}

// Validate checks the spec's domain.
func (s Spec) Validate() error {
	switch s.Topology {
	case Chain, Star, Snowflake:
	default:
		return fmt.Errorf("workload: unknown topology %q", s.Topology)
	}
	if s.Size < 1 {
		return fmt.Errorf("workload: size %d < 1", s.Size)
	}
	if s.Rows < 1 || s.Keys < 2 || s.Classes < 2 {
		return fmt.Errorf("workload: rows/keys/classes (%d/%d/%d) too small", s.Rows, s.Keys, s.Classes)
	}
	if s.Classes > s.Keys {
		return fmt.Errorf("workload: classes %d exceed key domain %d", s.Classes, s.Keys)
	}
	if s.Noise < 0 || s.Noise > 1 || s.NullRate < 0 || s.NullRate > 0.5 {
		return fmt.Errorf("workload: noise %v or null rate %v out of range", s.Noise, s.NullRate)
	}
	if s.Skew < 0 {
		return fmt.Errorf("workload: negative skew %v", s.Skew)
	}
	switch s.KeyKinds {
	case "int", "string", "mixed":
	default:
		return fmt.Errorf("workload: unknown key kinds %q (want int, string or mixed)", s.KeyKinds)
	}
	if s.Decoys < 0 || s.ExtraAttrs < 0 {
		return fmt.Errorf("workload: negative decoys %d or extra attrs %d", s.Decoys, s.ExtraAttrs)
	}
	if s.Fanout < 1 {
		return fmt.Errorf("workload: fanout %d < 1", s.Fanout)
	}
	switch s.PriceFamily {
	case "entropy", "flat", "tiered":
	default:
		return fmt.Errorf("workload: unknown price family %q (want entropy, flat or tiered)", s.PriceFamily)
	}
	return nil
}

// GroundTruth is what the generator knows and the acquisition must recover.
type GroundTruth struct {
	// X and Y are the planted attribute names ("x" on the base listing,
	// "y" on the terminal).
	X string `json:"x"`
	Y string `json:"y"`
	// Rho is the planted correlation CORR(X, Y) as measured on the full
	// join along Path — the value a correct acquisition realizes exactly.
	Rho float64 `json:"rho"`
	// Path lists the listing names of the planted join path, base first.
	Path []string `json:"path"`
	// Queries is the cheapest correct plan: the minimal projection
	// purchases (join keys plus x and y) along Path, in path order.
	Queries []pricing.Query `json:"queries"`
	// PlanCost is the exact price of Queries under the workload's pricing
	// model (the source-less acquisition: x is bought too).
	PlanCost float64 `json:"plan_cost"`
	// PlanCostOwned is PlanCost minus the base query: the cost when the
	// shopper owns the base table and only buys the rest of the path.
	PlanCostOwned float64 `json:"plan_cost_owned"`
}

// Workload is one generated marketplace plus its ground truth.
type Workload struct {
	Spec Spec
	Seed int64
	// Listings are the marketplace datasets in registration order (base
	// first, then the path, then decoys).
	Listings []*relation.Table
	// FDs are the published functional dependencies per listing.
	FDs map[string][]fd.FD
	// Truth is the planted ground truth.
	Truth GroundTruth

	model pricing.Model
}

// PricingModel returns the pricing model of the spec's price family (shared
// by Marketplace and the ground-truth plan cost).
func (w *Workload) PricingModel() pricing.Model { return w.model }

// Base returns the x-holding base listing.
func (w *Workload) Base() *relation.Table { return w.Listings[0] }

// Marketplace builds a fresh in-memory marketplace serving every listing.
func (w *Workload) Marketplace() *marketplace.InMemory {
	m := marketplace.NewInMemory(w.model)
	for _, t := range w.Listings {
		m.Register(t, w.FDs[t.Name])
	}
	return m
}

// MarketplaceWithoutBase builds a marketplace without the base listing, for
// the owned-source variant: the shopper registers Base with core.Dance's
// AddSource and only the rest of the catalog is for sale.
func (w *Workload) MarketplaceWithoutBase() *marketplace.InMemory {
	m := marketplace.NewInMemory(w.model)
	for _, t := range w.Listings[1:] {
		m.Register(t, w.FDs[t.Name])
	}
	return m
}

// PriceModel instantiates a price family by name ("entropy", "flat",
// "tiered"). Servers that load a workload directory (marketd -dir) use it
// to price listings with the same model the recorded ground-truth plan
// cost was computed under.
func PriceModel(family string) pricing.Model {
	switch family {
	case "flat":
		return pricing.FlatModel{PerAttribute: 2}
	case "tiered":
		return tieredModel{base: pricing.Cached(pricing.DefaultEntropyModel())}
	default:
		return pricing.Cached(pricing.DefaultEntropyModel())
	}
}

// tieredModel scales an arbitrage-free base model by a deterministic
// per-listing premium in {1, 1.25, …, 2}: marketplaces price popular
// listings up, and a constant per-instance factor preserves the monotone +
// subadditive (arbitrage-free) structure of the base model.
type tieredModel struct {
	base pricing.Model
}

func (m tieredModel) Name() string { return "tiered:" + m.base.Name() }

func (m tieredModel) PriceProjection(t *relation.Table, attrs []string) (float64, error) {
	p, err := m.base.PriceProjection(t, attrs)
	if err != nil {
		return 0, err
	}
	return p * tierFactor(t.Name), nil
}

func tierFactor(name string) float64 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return 1 + 0.25*float64(h.Sum32()%5)
}

// keyKind returns the key Value kind at a path level under the spec.
func (s Spec) keyKind(level int) relation.Kind {
	switch s.KeyKinds {
	case "string":
		return relation.KindString
	case "mixed":
		switch level % 3 {
		case 0:
			return relation.KindInt
		case 1:
			return relation.KindString
		default:
			return relation.KindFloat
		}
	default:
		return relation.KindInt
	}
}

// keyValue encodes key ordinal k at a level as a relation Value of the
// level's kind. Float keys carry a fractional offset so they never collide
// with int keys under the columnar int/float unification.
func (s Spec) keyValue(level, k int) relation.Value {
	switch s.keyKind(level) {
	case relation.KindString:
		return relation.StringValue(fmt.Sprintf("K%03d", k))
	case relation.KindFloat:
		return relation.FloatValue(float64(k) + 0.25)
	default:
		return relation.IntValue(int64(k))
	}
}

// builder accumulates generation state.
type builder struct {
	spec Spec
	rng  *rand.Rand
	w    *Workload
}

// Generate builds the workload of (spec, seed). The same arguments always
// produce byte-identical tables and identical ground truth.
func Generate(spec Spec, seed int64) (*Workload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	b := &builder{
		spec: spec,
		rng:  rand.New(rand.NewSource(seed)),
		w: &Workload{
			Spec:  spec,
			Seed:  seed,
			FDs:   map[string][]fd.FD{},
			model: PriceModel(spec.PriceFamily),
		},
	}
	var pathKeys []string // key attribute names along the planted path
	switch spec.Topology {
	case Chain:
		pathKeys = b.buildChain()
	case Star:
		pathKeys = b.buildStar(false)
	case Snowflake:
		pathKeys = b.buildStar(true)
	}
	b.buildDecoys(pathKeys)
	if err := b.groundTruth(); err != nil {
		return nil, err
	}
	return b.w, nil
}

// drawBaseKey samples a base-key ordinal, Zipf-skewed when Skew > 1.
func (b *builder) drawBaseKey(zipf *rand.Zipf) int {
	if zipf != nil {
		return int(zipf.Uint64())
	}
	return b.rng.Intn(b.spec.Keys)
}

// addExtraAttrs appends the spec's per-listing noise columns to a schema
// under construction, returning the generator for one row's extra values.
// Even columns are small-domain categorical ints, odd ones numeric floats.
func (b *builder) extraColumns(table string) []relation.Column {
	cols := make([]relation.Column, 0, b.spec.ExtraAttrs)
	for i := 0; i < b.spec.ExtraAttrs; i++ {
		name := fmt.Sprintf("%s_e%d", table, i)
		if i%2 == 0 {
			cols = append(cols, relation.Cat(name, relation.KindInt))
		} else {
			cols = append(cols, relation.Num(name, relation.KindFloat))
		}
	}
	return cols
}

func (b *builder) extraValues() []relation.Value {
	vals := make([]relation.Value, 0, b.spec.ExtraAttrs)
	for i := 0; i < b.spec.ExtraAttrs; i++ {
		if i%2 == 0 {
			vals = append(vals, relation.IntValue(int64(b.rng.Intn(8))))
		} else {
			vals = append(vals, relation.FloatValue(float64(b.rng.Intn(10000))/100))
		}
	}
	return vals
}

// buildBase emits the base listing: Rows rows of (k0, x, extras) with the
// class-dependent numeric x. Returns nothing; the base is Listings[0].
func (b *builder) buildBase() {
	s := b.spec
	cols := append([]relation.Column{
		relation.Cat("k0", s.keyKind(0)),
		relation.Num("x", relation.KindFloat),
	}, b.extraColumns("base")...)
	base := relation.NewTable("base", relation.NewSchema(cols...))
	var zipf *rand.Zipf
	if s.Skew > 1 {
		zipf = rand.NewZipf(b.rng, s.Skew, 1, uint64(s.Keys-1))
	}
	for i := 0; i < s.Rows; i++ {
		k := b.drawBaseKey(zipf)
		class := k % s.Classes
		x := float64(class)*8 + b.rng.Float64()*3
		row := append([]relation.Value{b.spec.keyValue(0, k), relation.FloatValue(x)}, b.extraValues()...)
		base.Append(row)
	}
	b.w.Listings = append(b.w.Listings, base)
	b.w.FDs["base"] = nil
}

// bridge emits one key-relabeling listing name(inAttr → outAttr) using a
// fresh bijection, with fanout duplicates, extra attributes, and NULL rows.
// It returns the bijection (ordinal at inLevel → ordinal at outLevel).
func (b *builder) bridge(name, inAttr, outAttr string, inLevel, outLevel int) []int {
	s := b.spec
	perm := b.rng.Perm(s.Keys)
	cols := append([]relation.Column{
		relation.Cat(inAttr, s.keyKind(inLevel)),
		relation.Cat(outAttr, s.keyKind(outLevel)),
	}, b.extraColumns(name)...)
	t := relation.NewTable(name, relation.NewSchema(cols...))
	for k := 0; k < s.Keys; k++ {
		for f := 0; f < s.Fanout; f++ {
			row := append([]relation.Value{
				s.keyValue(inLevel, k),
				s.keyValue(outLevel, perm[k]),
			}, b.extraValues()...)
			t.Append(row)
		}
	}
	b.appendNullRows(t, func() []relation.Value {
		return append([]relation.Value{
			relation.Null(),
			s.keyValue(outLevel, b.rng.Intn(s.Keys)),
		}, b.extraValues()...)
	})
	b.w.Listings = append(b.w.Listings, t)
	b.w.FDs[name] = []fd.FD{fd.New(outAttr, inAttr)}
	return perm
}

// terminal emits the y-selling listing keyed by keyAttr at keyLevel, where
// classOf maps the listing's key ordinal back to the planted class.
func (b *builder) terminal(name, keyAttr string, keyLevel int, classOf []int) {
	s := b.spec
	cols := append([]relation.Column{
		relation.Cat(keyAttr, s.keyKind(keyLevel)),
		relation.Cat("y", relation.KindString),
	}, b.extraColumns(name)...)
	t := relation.NewTable(name, relation.NewSchema(cols...))
	for k := 0; k < s.Keys; k++ {
		class := classOf[k]
		if b.rng.Float64() < s.Noise {
			class = b.rng.Intn(s.Classes)
		}
		label := relation.StringValue(fmt.Sprintf("L%02d", class))
		for f := 0; f < s.Fanout; f++ {
			row := append([]relation.Value{s.keyValue(keyLevel, k), label}, b.extraValues()...)
			t.Append(row)
		}
	}
	b.appendNullRows(t, func() []relation.Value {
		return append([]relation.Value{
			relation.Null(),
			relation.StringValue(fmt.Sprintf("L%02d", b.rng.Intn(s.Classes))),
		}, b.extraValues()...)
	})
	b.w.Listings = append(b.w.Listings, t)
	b.w.FDs[name] = []fd.FD{fd.New("y", keyAttr)}
}

// appendNullRows dirties a listing with NullRate extra rows (NULL join key).
func (b *builder) appendNullRows(t *relation.Table, row func() []relation.Value) {
	n := int(b.spec.NullRate * float64(t.NumRows()))
	for i := 0; i < n; i++ {
		t.Append(row())
	}
}

// invert returns the inverse of a key bijection.
func invert(perm []int) []int {
	inv := make([]int, len(perm))
	for k, v := range perm {
		inv[v] = k
	}
	return inv
}

// buildChain emits base → hop1 → … → hop{Size-1} → goal and records the
// planted path. It returns the key attribute names along the path.
func (b *builder) buildChain() []string {
	s := b.spec
	b.buildBase()
	path := []string{"base"}
	keys := []string{"k0"}
	// classOf[k] is the planted class of key ordinal k at the current
	// level; hops relabel it by their bijection.
	classOf := make([]int, s.Keys)
	for k := range classOf {
		classOf[k] = k % s.Classes
	}
	level := 0
	for hop := 1; hop < s.Size; hop++ {
		name := fmt.Sprintf("hop%d", hop)
		in, out := fmt.Sprintf("k%d", level), fmt.Sprintf("k%d", level+1)
		perm := b.bridge(name, in, out, level, level+1)
		next := make([]int, s.Keys)
		for k, class := range classOf {
			next[perm[k]] = class
		}
		classOf = next
		level++
		path = append(path, name)
		keys = append(keys, out)
	}
	b.terminal("goal", fmt.Sprintf("k%d", level), level, classOf)
	path = append(path, "goal")
	b.w.Truth.Path = path
	return keys
}

// buildStar emits base → hub → spokes (star) or base → hub → arms → tips
// (snowflake, deep=true); one branch is planted with y, the others sell
// uncorrelated labels. Returns the planted path's key attribute names.
func (b *builder) buildStar(deep bool) []string {
	s := b.spec
	b.buildBase()
	planted := b.rng.Intn(s.Size)

	// Hub: k0 plus one branch key per spoke, each through its own
	// bijection. Branch key level is 1 (tips live at level 2).
	perms := make([][]int, s.Size)
	cols := []relation.Column{relation.Cat("k0", s.keyKind(0))}
	for j := 0; j < s.Size; j++ {
		perms[j] = b.rng.Perm(s.Keys)
		cols = append(cols, relation.Cat(fmt.Sprintf("bk%d", j+1), s.keyKind(1)))
	}
	cols = append(cols, b.extraColumns("hub")...)
	hub := relation.NewTable("hub", relation.NewSchema(cols...))
	for k := 0; k < s.Keys; k++ {
		for f := 0; f < s.Fanout; f++ {
			row := []relation.Value{s.keyValue(0, k)}
			for j := 0; j < s.Size; j++ {
				row = append(row, s.keyValue(1, perms[j][k]))
			}
			hub.Append(append(row, b.extraValues()...))
		}
	}
	b.appendNullRows(hub, func() []relation.Value {
		row := []relation.Value{relation.Null()}
		for j := 0; j < s.Size; j++ {
			row = append(row, s.keyValue(1, b.rng.Intn(s.Keys)))
		}
		return append(row, b.extraValues()...)
	})
	b.w.Listings = append(b.w.Listings, hub)
	var hubFDs []fd.FD
	for j := 0; j < s.Size; j++ {
		hubFDs = append(hubFDs, fd.New(fmt.Sprintf("bk%d", j+1), "k0"))
	}
	b.w.FDs["hub"] = hubFDs

	path := []string{"base", "hub"}
	keys := []string{"k0", fmt.Sprintf("bk%d", planted+1)}
	for j := 0; j < s.Size; j++ {
		bk := fmt.Sprintf("bk%d", j+1)
		// classOf at the branch-key level.
		classOf := make([]int, s.Keys)
		inv := invert(perms[j])
		for k := range classOf {
			classOf[k] = inv[k] % s.Classes
		}
		if !deep {
			if j == planted {
				b.terminal(fmt.Sprintf("spoke%d", j+1), bk, 1, classOf)
				path = append(path, fmt.Sprintf("spoke%d", j+1))
			} else {
				b.decoyTerminal(fmt.Sprintf("spoke%d", j+1), bk, 1, j+1)
			}
			continue
		}
		ck := fmt.Sprintf("ck%d", j+1)
		perm := b.bridge(fmt.Sprintf("arm%d", j+1), bk, ck, 1, 2)
		next := make([]int, s.Keys)
		for k, class := range classOf {
			next[perm[k]] = class
		}
		if j == planted {
			b.terminal(fmt.Sprintf("tip%d", j+1), ck, 2, next)
			path = append(path, fmt.Sprintf("arm%d", j+1), fmt.Sprintf("tip%d", j+1))
			keys = append(keys, ck)
		} else {
			b.decoyTerminal(fmt.Sprintf("tip%d", j+1), ck, 2, j+1)
		}
	}
	b.w.Truth.Path = path
	return keys
}

// decoyTerminal emits a listing shaped like a terminal but selling an
// uncorrelated label attribute w{idx}.
func (b *builder) decoyTerminal(name, keyAttr string, keyLevel, idx int) {
	s := b.spec
	attr := fmt.Sprintf("w%d", idx)
	cols := append([]relation.Column{
		relation.Cat(keyAttr, s.keyKind(keyLevel)),
		relation.Cat(attr, relation.KindString),
	}, b.extraColumns(name)...)
	t := relation.NewTable(name, relation.NewSchema(cols...))
	for k := 0; k < s.Keys; k++ {
		label := relation.StringValue(fmt.Sprintf("W%02d", b.rng.Intn(s.Classes)))
		for f := 0; f < s.Fanout; f++ {
			row := append([]relation.Value{s.keyValue(keyLevel, k), label}, b.extraValues()...)
			t.Append(row)
		}
	}
	b.appendNullRows(t, func() []relation.Value {
		return append([]relation.Value{
			relation.Null(),
			relation.StringValue(fmt.Sprintf("W%02d", b.rng.Intn(s.Classes))),
		}, b.extraValues()...)
	})
	b.w.Listings = append(b.w.Listings, t)
	b.w.FDs[name] = []fd.FD{fd.New(attr, keyAttr)}
}

// buildDecoys attaches Spec.Decoys extra listings round-robin over the
// planted path's key attributes (pathKeys[i] lives at key level i).
func (b *builder) buildDecoys(pathKeys []string) {
	for j := 0; j < b.spec.Decoys; j++ {
		lvl := j % len(pathKeys)
		b.decoyTerminal(fmt.Sprintf("decoy%d", j+1), pathKeys[lvl], lvl, 100+j)
	}
}

// groundTruth joins the planted path on the full data, measures ρ, and
// prices the cheapest correct plan.
func (b *builder) groundTruth() error {
	w := b.w
	byName := map[string]*relation.Table{}
	for _, t := range w.Listings {
		byName[t.Name] = t
	}
	steps := make([]relation.PathStep, len(w.Truth.Path))
	prev := byName[w.Truth.Path[0]]
	steps[0] = relation.PathStep{Table: prev}
	for i := 1; i < len(w.Truth.Path); i++ {
		cur := byName[w.Truth.Path[i]]
		on := relation.SharedAttrs(prev.Schema, cur.Schema)
		if len(on) != 1 {
			return fmt.Errorf("workload: path step %s—%s shares %v (want exactly one key)", prev.Name, cur.Name, on)
		}
		steps[i] = relation.PathStep{Table: cur, On: on}
		prev = cur
	}
	// The planted join runs on the columnar kernels with one worker per CPU:
	// the million-row specs make the row path (which materializes every
	// joined row) prohibitively slow, and the columnar result is pinned
	// bit-identical to it for every worker count.
	workers := runtime.GOMAXPROCS(0)
	acc := relation.ToColumnar(steps[0].Table)
	for i := 1; i < len(steps); i++ {
		next, err := relation.EquiJoinColumnarOpts(acc, relation.ToColumnar(steps[i].Table), steps[i].On, nil,
			relation.JoinOptions{Workers: workers})
		if err != nil {
			return fmt.Errorf("workload: planted join: %w", err)
		}
		acc = next
	}
	w.Truth.X, w.Truth.Y = "x", "y"
	rho, err := infotheory.CorrelationColumnar(acc, []string{"x"}, []string{"y"})
	if err != nil {
		return fmt.Errorf("workload: planted correlation: %w", err)
	}
	w.Truth.Rho = rho

	// Cheapest correct plan: along the planted path each listing sells
	// exactly its join keys plus the planted attribute it holds. Off-path
	// shortcuts to y do not exist by construction (y is sold only by the
	// terminal, reachable only through the path), so no cheaper correct
	// plan exists under a monotone pricing model.
	for i, name := range w.Truth.Path {
		t := byName[name]
		need := map[string]bool{}
		if i > 0 {
			for _, a := range steps[i].On {
				need[a] = true
			}
		}
		if i+1 < len(steps) {
			for _, a := range steps[i+1].On {
				need[a] = true
			}
		}
		if i == 0 {
			need["x"] = true
		}
		if i == len(steps)-1 {
			need["y"] = true
		}
		attrs := make([]string, 0, len(need))
		for a := range need {
			attrs = append(attrs, a)
		}
		sort.Strings(attrs)
		price, err := w.model.PriceProjection(t, attrs)
		if err != nil {
			return fmt.Errorf("workload: pricing plan query on %s: %w", name, err)
		}
		w.Truth.Queries = append(w.Truth.Queries, pricing.Query{Instance: name, Attrs: attrs})
		w.Truth.PlanCost += price
		if i > 0 {
			w.Truth.PlanCostOwned += price
		}
	}
	return nil
}
