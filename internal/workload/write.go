package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/dance-db/dance/internal/datadir"
)

// WriteDir emits the workload in the directory layout marketd serves with
// -dir: one typed CSV per listing, a workload.fds file with the published
// FDs, and a workload.json ground-truth record (spec, seed, planted ρ, the
// cheapest correct plan and its cost) that quickstarts and tests compare
// acquisitions against. The directory is created if missing.
func (w *Workload) WriteDir(dir string) error {
	if _, err := datadir.WriteTables(dir, w.Listings, w.FDs, "workload"); err != nil {
		return err
	}
	return w.WriteTruth(filepath.Join(dir, "workload.json"))
}

// truthFile is the serialized ground-truth record.
type truthFile struct {
	Spec  string      `json:"spec"`
	Seed  int64       `json:"seed"`
	Truth GroundTruth `json:"truth"`
}

// WriteTruth writes the ground-truth JSON record.
func (w *Workload) WriteTruth(path string) error {
	enc, err := json.MarshalIndent(truthFile{Spec: w.Spec.String(), Seed: w.Seed, Truth: w.Truth}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

// ReadTruth loads a ground-truth record written by WriteTruth, returning
// the spec, seed and truth it recorded.
func ReadTruth(path string) (Spec, int64, GroundTruth, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, 0, GroundTruth{}, err
	}
	var tf truthFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return Spec{}, 0, GroundTruth{}, fmt.Errorf("workload: parse truth %s: %w", path, err)
	}
	spec, err := ParseSpec(tf.Spec)
	if err != nil {
		return Spec{}, 0, GroundTruth{}, err
	}
	return spec, tf.Seed, tf.Truth, nil
}
