package workload

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dance-db/dance/internal/core"
	"github.com/dance-db/dance/internal/search"
)

var bg = context.Background()

// tableBytes serializes every listing to CSV for byte-level comparison.
func tableBytes(t *testing.T, w *Workload) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tab := range w.Listings {
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestGenerateDeterministic(t *testing.T) {
	specs := []string{
		"chain:3",
		"star:3,kinds=mixed,null=0.05,skew=1.3",
		"snowflake:2,rows=300,price=tiered,fanout=2",
	}
	for _, s := range specs {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		a, err := Generate(spec, 7)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		b, err := Generate(spec, 7)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !bytes.Equal(tableBytes(t, a), tableBytes(t, b)) {
			t.Fatalf("%s: same (seed, spec) produced different marketplace bytes", s)
		}
		if a.Truth.Rho != b.Truth.Rho || a.Truth.PlanCost != b.Truth.PlanCost {
			t.Fatalf("%s: ground truth differs: %+v vs %+v", s, a.Truth, b.Truth)
		}
		c, err := Generate(spec, 8)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if bytes.Equal(tableBytes(t, a), tableBytes(t, c)) {
			t.Fatalf("%s: different seeds produced identical bytes", s)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	in := "snowflake:3,attrs=2,classes=4,decoys=1,fanout=2,keys=24,kinds=mixed,noise=0.1,null=0.02,price=flat,rows=500,skew=1.5"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.String(); got != in {
		t.Fatalf("canonical form %q does not round-trip %q", got, in)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if again != spec {
		t.Fatalf("re-parsed spec differs: %+v vs %+v", again, spec)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"",                 // no topology:size
		"chain",            // missing size
		"ring:3",           // unknown topology
		"chain:0",          // size < 1
		"chain:2,rows",     // malformed option
		"chain:2,bogus=1",  // unknown option
		"chain:2,rows=x",   // bad number
		"chain:2,null=0.9", // out of range
		"chain:2,price=up", // unknown family
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted a malformed spec", s)
		}
	}
}

// TestPlantedCorrelation checks the planting machinery: the measured ρ is
// positive, beats a heavily noised variant, and the cheapest plan is priced
// consistently with its owned-source discount.
func TestPlantedCorrelation(t *testing.T) {
	for _, s := range []string{"chain:2", "chain:4,kinds=mixed", "star:3", "snowflake:2"} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		w, err := Generate(spec, 11)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if w.Truth.Rho <= 0.2 {
			t.Errorf("%s: planted correlation %v too weak", s, w.Truth.Rho)
		}
		if w.Truth.PlanCost <= w.Truth.PlanCostOwned || w.Truth.PlanCostOwned <= 0 {
			t.Errorf("%s: plan costs %v / %v inconsistent", s, w.Truth.PlanCost, w.Truth.PlanCostOwned)
		}
		if len(w.Truth.Queries) != len(w.Truth.Path) {
			t.Errorf("%s: %d queries for %d path steps", s, len(w.Truth.Queries), len(w.Truth.Path))
		}
		noisy := spec
		noisy.Noise = 0.9
		nw, err := Generate(noisy, 11)
		if err != nil {
			t.Fatal(err)
		}
		if nw.Truth.Rho >= w.Truth.Rho {
			t.Errorf("%s: noise 0.9 did not weaken ρ (%v vs %v)", s, nw.Truth.Rho, w.Truth.Rho)
		}
	}
}

// TestDanceRecoversChain is the always-on smoke of the scenario matrix: a
// full acquisition against one generated chain marketplace recovers the
// planted correlation exactly and pays no more than the ground-truth plan.
func TestDanceRecoversChain(t *testing.T) {
	spec, err := ParseSpec("chain:2,decoys=1")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	mw := core.New(w.Marketplace(), core.Config{SampleRate: 0.6, SampleSeed: 9})
	plan, err := mw.Acquire(bg, search.Request{
		TargetAttrs: []string{w.Truth.X, w.Truth.Y},
		Iterations:  60,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Est.Price > w.Truth.PlanCost*1.0001 {
		t.Fatalf("plan price %v exceeds ground-truth cheapest cost %v", plan.Est.Price, w.Truth.PlanCost)
	}
	purchase, err := mw.Execute(bg, plan)
	if err != nil {
		t.Fatal(err)
	}
	got, want := purchase.Realized.Correlation, w.Truth.Rho
	if got < want*0.98 || got > want*1.02 {
		t.Fatalf("realized correlation %v, planted %v", got, want)
	}
}

func TestWriteDirRoundTrip(t *testing.T) {
	spec, err := ParseSpec("chain:2,null=0.05")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Generate(spec, 21)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := w.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	gotSpec, seed, truth, err := ReadTruth(filepath.Join(dir, "workload.json"))
	if err != nil {
		t.Fatal(err)
	}
	if gotSpec != spec || seed != 21 {
		t.Fatalf("truth file round-trip: spec %+v seed %d", gotSpec, seed)
	}
	if truth.Rho != w.Truth.Rho || truth.PlanCost != w.Truth.PlanCost {
		t.Fatalf("truth differs after round-trip: %+v vs %+v", truth, w.Truth)
	}
	if len(truth.Queries) != len(w.Truth.Queries) {
		t.Fatalf("queries lost in round-trip")
	}
	if !strings.HasPrefix(truth.Path[0], "base") {
		t.Fatalf("path = %v", truth.Path)
	}
}
