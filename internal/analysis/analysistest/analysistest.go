// Package analysistest runs dancevet analyzers over testdata fixture
// packages and checks their diagnostics against `// want "regex"`
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest on
// the repo's stdlib-only framework.
//
// Fixtures live under <testdata>/src/<path>/ as plain directories of Go
// files (go tooling ignores testdata, so fixtures may contain deliberate
// invariant violations without failing the repo's own vet/build). A
// fixture file expects a diagnostic on a line by ending it with
//
//	code // want "regexp"
//
// Multiple expectations stack: // want "a" "b". Diagnostics suppressed by
// //dancevet:ignore directives are dropped before matching, so a fixture
// line carrying a directive and no want-comment asserts the suppression
// machinery works.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"github.com/dance-db/dance/internal/analysis"
)

// TestData returns the caller package's testdata directory.
func TestData() string {
	_, file, _, ok := runtime.Caller(1)
	if !ok {
		panic("analysistest: cannot locate caller")
	}
	return filepath.Join(filepath.Dir(file), "testdata")
}

// Run loads the fixture package at <testdata>/src/<path>, applies the
// analyzer, and reports mismatches between diagnostics and want-comments
// through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, path string) {
	t.Helper()
	pkg, err := loadFixture(testdata, path)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	wants := parseWants(t, pkg)
	// Match every finding to a want on its line.
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`// want (.*)$`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]+)`")

func parseWants(t *testing.T, pkg *analysis.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, arg := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
					pat := arg[2] // `raw` form: the pattern verbatim
					if arg[2] == "" {
						pat = unquoteWant(arg[1])
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

func unquoteWant(s string) string {
	// The capture group already stripped the surrounding quotes; undo the
	// escapes a Go string literal would need for a quote.
	return strings.ReplaceAll(s, `\"`, `"`)
}

// loadFixture parses and type-checks the fixture package rooted at
// <testdata>/src/<path>. Imports resolve against sibling fixture packages
// first (by path under src/), then against the real build graph via
// `go list -export` (stdlib and module packages).
func loadFixture(testdata, path string) (*analysis.Package, error) {
	root := filepath.Join(testdata, "src")
	fset := token.NewFileSet()
	loader := &fixtureLoader{
		root: root,
		fset: fset,
		pkgs: make(map[string]*loadedFixture),
	}
	lf, err := loader.load(path)
	if err != nil {
		return nil, err
	}
	return &analysis.Package{
		Path:  path,
		Dir:   filepath.Join(root, path),
		Fset:  fset,
		Files: lf.files,
		Types: lf.types,
		Info:  lf.info,
	}, nil
}

type loadedFixture struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type fixtureLoader struct {
	root     string
	fset     *token.FileSet
	pkgs     map[string]*loadedFixture
	external types.Importer // lazily built from go list -export
}

func (l *fixtureLoader) load(path string) (*loadedFixture, error) {
	if lf, ok := l.pkgs[path]; ok {
		if lf == nil {
			return nil, fmt.Errorf("import cycle through fixture %q", path)
		}
		return lf, nil
	}
	l.pkgs[path] = nil // cycle marker
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture %q: %w", path, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture %q: no Go files in %s", path, dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("fixture %q: %w", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importerFunc(func(ip string) (*types.Package, error) {
		return l.resolve(ip)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("fixture %q: type-checking: %w", path, err)
	}
	lf := &loadedFixture{files: files, types: tpkg, info: info}
	l.pkgs[path] = lf
	return lf, nil
}

func (l *fixtureLoader) resolve(ip string) (*types.Package, error) {
	// Fixture-local packages shadow everything else.
	if st, err := os.Stat(filepath.Join(l.root, ip)); err == nil && st.IsDir() {
		lf, err := l.load(ip)
		if err != nil {
			return nil, err
		}
		return lf.types, nil
	}
	if l.external == nil {
		ext, err := analysis.NewGoListImporter(l.fset)
		if err != nil {
			return nil, err
		}
		l.external = ext
	}
	return l.external.Import(ip)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
