package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Lockorder builds a lock-acquisition-order graph per package and reports
// every cycle with both witness paths — the static half of the deadlock
// defense the nightly -race sweep probes dynamically. The repo's lock
// population is already plural (core.Dance.mu and offlineMu, the sharded
// evaluator and prefix caches, the JI and price memos, the sample store)
// and the ROADMAP's durable-state and coalescing waves multiply it, so the
// inversion class is fossilized now: if function f acquires B while holding
// A, the graph gains edge A→B; a cycle means two interleaved goroutines can
// each hold what the other wants.
//
// Mechanics:
//
//   - A lock is identified by its declaration, not its instance:
//     "pkg.Type.field" for a struct-field mutex, "pkg.var" for a
//     package-level one, "pkg.Type" for an embedded sync.Mutex. Two shards
//     of one array share an identity, so same-identity nesting is *not*
//     reported (ordering distinct instances of one lock class needs a
//     runtime discipline — address order — the analyzer cannot see).
//   - Edges come from a linear walk of each function (same approximations
//     as lockguard: branch bodies are walked but their lock effects do not
//     survive the join; `go` literals start with nothing held; deferred
//     Unlocks keep the lock held to the end), plus transitive same-package
//     call summaries from Pass.Flow — holding A and calling g() that
//     eventually Locks B adds A→B with the call chain as witness. Calls
//     that cross package boundaries are invisible; CI compensates by
//     running the analyzer over every package.
//   - RLock counts as an acquisition: reader/writer interleavings deadlock
//     through the same inversions.
//
// Intended order is declared on the mutex field itself:
//
//	// lockorder: before mu
//	offlineMu sync.Mutex
//
// adds a declared edge, so the *opposite* inferred edge closes a cycle and
// fails CI even before a second inverted site exists. `lockorder: leaf`
// asserts the mutex is terminal — any acquisition made while holding it is
// reported on the spot.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc: "no cycles in the lock-acquisition-order graph; `lockorder: before " +
		"<mu>` declares intended order, `lockorder: leaf` forbids nesting " +
		"under the annotated mutex (the deadlock class ahead of the " +
		"durable-state and coalescing waves)",
	Run: runLockorder,
}

var lockorderRe = regexp.MustCompile(`lockorder:\s*(?:before\s+([A-Za-z_][A-Za-z0-9_]*)|(leaf))`)

// lockEdge is one ordered pair in the acquisition graph with its first
// witness.
type lockEdge struct {
	from, to string
	desc     string
	pos      token.Pos
	declared bool
}

// heldLock is one acquisition on the current walk path.
type heldLock struct {
	id  string
	pos token.Pos
}

// lockAcq is one (possibly transitive) acquisition a function may perform.
type lockAcq struct {
	pos  token.Pos
	path string // call chain from the summarized function, "" when direct
}

type lockOrder struct {
	pass *Pass
	fl   *Flow

	edges map[string]*lockEdge
	order []string // edge keys in insertion order, for determinism
	leaf  map[string]token.Pos

	acqMemo     map[*types.Func]map[string]lockAcq
	acqVisiting map[*types.Func]bool
}

func runLockorder(pass *Pass) error {
	lo := &lockOrder{
		pass:        pass,
		fl:          pass.Flow(),
		edges:       map[string]*lockEdge{},
		leaf:        map[string]token.Pos{},
		acqMemo:     map[*types.Func]map[string]lockAcq{},
		acqVisiting: map[*types.Func]bool{},
	}
	lo.collectAnnotations()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lo.walkStmt(fd, fd.Body, nil)
		}
	}
	lo.reportLeafViolations()
	lo.reportCycles()
	return nil
}

// collectAnnotations reads `lockorder:` directives off mutex struct fields.
func (lo *lockOrder) collectAnnotations() {
	pkgName := lo.pass.Pkg.Name()
	for _, file := range lo.pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					continue
				}
				for _, field := range st.Fields.List {
					lo.fieldAnnotations(pkgName, ts.Name.Name, field)
				}
			}
		}
	}
}

func (lo *lockOrder) fieldAnnotations(pkgName, typeName string, field *ast.Field) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, m := range lockorderRe.FindAllStringSubmatch(cg.Text(), -1) {
			for _, name := range field.Names {
				obj := lo.pass.TypesInfo.Defs[name]
				if obj == nil || !isSyncMutexType(obj.Type()) {
					lo.pass.Reportf(name.Pos(),
						"lockorder annotation on %s.%s, which is not a sync.Mutex/RWMutex field",
						typeName, name.Name)
					continue
				}
				id := pkgName + "." + typeName + "." + name.Name
				switch {
				case m[1] != "":
					to := pkgName + "." + typeName + "." + m[1]
					lo.addEdge(id, to, fmt.Sprintf(
						"declared `lockorder: before %s` (%s)", m[1], lo.shortPos(name.Pos())),
						name.Pos(), true)
				case m[2] != "":
					//dancevet:ignore cachekey Go identifiers cannot contain dots, so pkg.Type.field is injective
					lo.leaf[id] = name.Pos()
				}
			}
		}
	}
}

func (lo *lockOrder) addEdge(from, to, desc string, pos token.Pos, declared bool) {
	if from == to {
		return // same lock class: instance ordering is out of static reach
	}
	key := from + "\x00" + to
	if _, ok := lo.edges[key]; ok {
		return // first witness wins
	}
	lo.edges[key] = &lockEdge{from: from, to: to, desc: desc, pos: pos, declared: declared}
	lo.order = append(lo.order, key)
}

// walkStmt interprets stmt with the ordered list of held locks, returning
// the post-state. fd is the enclosing function (witness labels).
func (lo *lockOrder) walkStmt(fd *ast.FuncDecl, stmt ast.Stmt, held []heldLock) []heldLock {
	switch s := stmt.(type) {
	case nil:
		return held
	case *ast.BlockStmt:
		for _, inner := range s.List {
			held = lo.walkStmt(fd, inner, held)
		}
		return held
	case *ast.ExprStmt:
		return lo.walkExpr(fd, s.X, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			held = lo.walkExpr(fd, rhs, held)
		}
		return held
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = lo.walkExpr(fd, v, held)
					}
				}
			}
		}
		return held
	case *ast.IfStmt:
		held = lo.walkStmt(fd, s.Init, held)
		held = lo.walkExpr(fd, s.Cond, held)
		lo.walkStmt(fd, s.Body, cloneHeld(held))
		if s.Else != nil {
			lo.walkStmt(fd, s.Else, cloneHeld(held))
		}
		return held // branch lock effects do not survive the join
	case *ast.ForStmt:
		held = lo.walkStmt(fd, s.Init, held)
		held = lo.walkExpr(fd, s.Cond, held)
		body := lo.walkStmt(fd, s.Body, cloneHeld(held))
		lo.walkStmt(fd, s.Post, body)
		return held
	case *ast.RangeStmt:
		held = lo.walkExpr(fd, s.X, held)
		lo.walkStmt(fd, s.Body, cloneHeld(held))
		return held
	case *ast.SwitchStmt:
		held = lo.walkStmt(fd, s.Init, held)
		held = lo.walkExpr(fd, s.Tag, held)
		lo.walkCaseBodies(fd, s.Body, held)
		return held
	case *ast.TypeSwitchStmt:
		held = lo.walkStmt(fd, s.Init, held)
		lo.walkStmt(fd, s.Assign, cloneHeld(held))
		lo.walkCaseBodies(fd, s.Body, held)
		return held
	case *ast.SelectStmt:
		lo.walkCaseBodies(fd, s.Body, held)
		return held
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			held = lo.walkExpr(fd, r, held)
		}
		return held
	case *ast.DeferStmt:
		if op, _, ok := lo.mutexOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return held // deferred release: held until return, as lockguard models
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lo.walkStmt(fd, lit.Body, cloneHeld(held))
			return held
		}
		return lo.walkExpr(fd, s.Call, held)
	case *ast.GoStmt:
		// The goroutine does not inherit the spawner's critical section.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lo.walkStmt(fd, lit.Body, nil)
		}
		for _, a := range s.Call.Args {
			held = lo.walkExpr(fd, a, held)
		}
		return held
	case *ast.LabeledStmt:
		return lo.walkStmt(fd, s.Stmt, held)
	case *ast.SendStmt:
		held = lo.walkExpr(fd, s.Chan, held)
		return lo.walkExpr(fd, s.Value, held)
	default:
		return held
	}
}

func (lo *lockOrder) walkCaseBodies(fd *ast.FuncDecl, body *ast.BlockStmt, held []heldLock) {
	for _, c := range body.List {
		entry := cloneHeld(held)
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				entry = lo.walkExpr(fd, e, entry)
			}
			for _, s := range cc.Body {
				entry = lo.walkStmt(fd, s, entry)
			}
		case *ast.CommClause:
			entry = lo.walkStmt(fd, cc.Comm, entry)
			for _, s := range cc.Body {
				entry = lo.walkStmt(fd, s, entry)
			}
		}
	}
}

// walkExpr applies lock effects of calls inside e, in source order.
func (lo *lockOrder) walkExpr(fd *ast.FuncDecl, e ast.Expr, held []heldLock) []heldLock {
	switch e := e.(type) {
	case nil:
		return held
	case *ast.CallExpr:
		for _, a := range e.Args {
			held = lo.walkExpr(fd, a, held)
		}
		if op, id, ok := lo.mutexOp(e); ok {
			switch op {
			case "Lock", "RLock":
				for _, h := range held {
					lo.addEdge(h.id, id, fmt.Sprintf(
						"%s acquires %s (%s) while holding %s (%s)",
						fd.Name.Name, id, lo.shortPos(e.Pos()), h.id, lo.shortPos(h.pos)),
						e.Pos(), false)
				}
				return append(held, heldLock{id: id, pos: e.Pos()})
			case "Unlock", "RUnlock":
				return releaseHeld(held, id)
			}
			return held
		}
		if f := calleeFunc(lo.pass.TypesInfo, e); f != nil && len(held) > 0 {
			if lo.fl.DeclOf(f) != nil {
				acqs := lo.acquiresOf(f)
				for _, id := range sortedAcqKeys(acqs) {
					acq := acqs[id]
					chain := f.Name()
					if acq.path != "" {
						chain += " → " + acq.path
					}
					for _, h := range held {
						lo.addEdge(h.id, id, fmt.Sprintf(
							"%s holds %s (%s) and calls %s, which acquires %s (%s)",
							fd.Name.Name, h.id, lo.shortPos(h.pos), chain, id, lo.shortPos(acq.pos)),
							e.Pos(), false)
					}
				}
			}
		}
		if lit, ok := e.Fun.(*ast.FuncLit); ok {
			// Immediately invoked: runs under the current critical section.
			lo.walkStmt(fd, lit.Body, cloneHeld(held))
		}
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			held = lo.walkExpr(fd, sel.X, held)
		}
		return held
	case *ast.FuncLit:
		// Stored for later: runs under an unknown critical section — walk
		// with nothing held so only its internal ordering is recorded.
		lo.walkStmt(fd, e.Body, nil)
		return held
	case *ast.BinaryExpr:
		held = lo.walkExpr(fd, e.X, held)
		return lo.walkExpr(fd, e.Y, held)
	case *ast.UnaryExpr:
		return lo.walkExpr(fd, e.X, held)
	case *ast.ParenExpr:
		return lo.walkExpr(fd, e.X, held)
	case *ast.StarExpr:
		return lo.walkExpr(fd, e.X, held)
	case *ast.SelectorExpr:
		return lo.walkExpr(fd, e.X, held)
	case *ast.IndexExpr:
		held = lo.walkExpr(fd, e.X, held)
		return lo.walkExpr(fd, e.Index, held)
	case *ast.SliceExpr:
		held = lo.walkExpr(fd, e.X, held)
		held = lo.walkExpr(fd, e.Low, held)
		held = lo.walkExpr(fd, e.High, held)
		return lo.walkExpr(fd, e.Max, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			held = lo.walkExpr(fd, el, held)
		}
		return held
	case *ast.KeyValueExpr:
		return lo.walkExpr(fd, e.Value, held)
	case *ast.TypeAssertExpr:
		return lo.walkExpr(fd, e.X, held)
	default:
		return held
	}
}

// acquiresOf summarizes every lock f may acquire, directly or through
// same-package callees (go-spawned work excluded: another goroutine's
// acquisitions are not ordered after the caller's holds).
func (lo *lockOrder) acquiresOf(f *types.Func) map[string]lockAcq {
	if m, ok := lo.acqMemo[f]; ok {
		return m
	}
	if lo.acqVisiting[f] {
		return nil
	}
	lo.acqVisiting[f] = true
	out := map[string]lockAcq{}
	if fd := lo.fl.DeclOf(f); fd != nil {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if op, id, ok := lo.mutexOp(n); ok && (op == "Lock" || op == "RLock") {
					if _, dup := out[id]; !dup {
						out[id] = lockAcq{pos: n.Pos()}
					}
				}
			}
			return true
		})
		for _, g := range lo.fl.CalleesOf(fd) {
			if g == f {
				continue
			}
			for id, acq := range lo.acquiresOf(g) {
				if _, dup := out[id]; dup {
					continue
				}
				path := g.Name()
				if acq.path != "" {
					path += " → " + acq.path
				}
				out[id] = lockAcq{pos: acq.pos, path: path}
			}
		}
	}
	delete(lo.acqVisiting, f)
	lo.acqMemo[f] = out
	return out
}

// mutexOp recognizes a sync.Mutex/RWMutex method call and resolves the
// receiver to a lock identity. ok is false when the receiver cannot be
// named statically (local aliases, sync.Locker values).
func (lo *lockOrder) mutexOp(call *ast.CallExpr) (op, id string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	f, _ := lo.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch f.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	id = lo.lockIDOf(sel.X)
	if id == "" {
		return "", "", false
	}
	return f.Name(), id, true
}

// lockIDOf names the mutex x denotes: "pkg.Type.field", "pkg.var", or
// "pkg.Type" for an embedded mutex.
func (lo *lockOrder) lockIDOf(x ast.Expr) string {
	x = ast.Unparen(x)
	t := lo.pass.TypeOf(x)
	if t == nil {
		return ""
	}
	if isSyncMutexType(t) {
		switch xx := x.(type) {
		case *ast.SelectorExpr:
			if selection, ok := lo.pass.TypesInfo.Selections[xx]; ok && selection.Kind() == types.FieldVal {
				obj := selection.Obj()
				owner := namedRecv(selection.Recv())
				if obj.Pkg() != nil && owner != "" {
					//dancevet:ignore cachekey Go identifiers cannot contain dots, so pkg.Type.field is injective
					return obj.Pkg().Name() + "." + owner + "." + obj.Name()
				}
				return ""
			}
			// Qualified package-level var: pkg.mu.
			if v, ok := lo.pass.ObjectOf(xx.Sel).(*types.Var); ok && packageLevel(v) {
				return v.Pkg().Name() + "." + v.Name()
			}
		case *ast.Ident:
			if v, ok := lo.pass.ObjectOf(xx).(*types.Var); ok && packageLevel(v) {
				return v.Pkg().Name() + "." + v.Name()
			}
		}
		return ""
	}
	// Promoted method through an embedded mutex: the named type is the lock.
	tt := t
	if ptr, isPtr := tt.(*types.Pointer); isPtr {
		tt = ptr.Elem()
	}
	if named, isNamed := tt.(*types.Named); isNamed {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() != "sync" {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	}
	return ""
}

func (lo *lockOrder) reportLeafViolations() {
	leaves := make([]string, 0, len(lo.leaf))
	for id := range lo.leaf {
		leaves = append(leaves, id)
	}
	sort.Strings(leaves)
	for _, id := range leaves {
		for _, key := range lo.order {
			e := lo.edges[key]
			if e.from != id {
				continue
			}
			lo.pass.Reportf(e.pos,
				"%s is annotated `lockorder: leaf` (%s) but the graph has %s → %s: %s",
				id, lo.shortPos(lo.leaf[id]), e.from, e.to, e.desc)
		}
	}
}

func (lo *lockOrder) reportCycles() {
	adj := map[string][]*lockEdge{}
	var nodes []string
	seenNode := map[string]bool{}
	for _, key := range lo.order {
		e := lo.edges[key]
		adj[e.from] = append(adj[e.from], e)
		for _, n := range []string{e.from, e.to} {
			if !seenNode[n] {
				seenNode[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Strings(nodes)
	for _, es := range adj {
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
	}

	const (
		white = iota
		gray
		black
	)
	color := map[string]int{}
	var stack []string
	var edgeStack []*lockEdge
	reported := map[string]bool{}

	var dfs func(n string)
	dfs = func(n string) {
		color[n] = gray
		stack = append(stack, n)
		for _, e := range adj[n] {
			switch color[e.to] {
			case white:
				edgeStack = append(edgeStack, e)
				dfs(e.to)
				edgeStack = edgeStack[:len(edgeStack)-1]
			case gray:
				lo.reportCycle(stack, append(edgeStack, e), e.to, reported)
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			dfs(n)
		}
	}
}

// reportCycle extracts the cycle closing at node start from the DFS stacks
// and reports it once, with every edge's witness.
func (lo *lockOrder) reportCycle(stack []string, edges []*lockEdge, start string, reported map[string]bool) {
	i := 0
	for ; i < len(stack); i++ {
		if stack[i] == start {
			break
		}
	}
	cycleNodes := append(append([]string{}, stack[i:]...), start)
	cycleEdges := edges[i:]

	canon := append([]string{}, stack[i:]...)
	sort.Strings(canon)
	key := strings.Join(canon, "\x00")
	if reported[key] {
		return
	}
	reported[key] = true

	var witnesses []string
	for _, e := range cycleEdges {
		witnesses = append(witnesses, e.desc)
	}
	lo.pass.Reportf(cycleEdges[0].pos,
		"lock-order cycle %s: two goroutines interleaving these paths deadlock — %s",
		strings.Join(cycleNodes, " → "), strings.Join(witnesses, "; "))
}

func (lo *lockOrder) shortPos(pos token.Pos) string {
	p := lo.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

func isSyncMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func packageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func cloneHeld(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

func releaseHeld(held []heldLock, id string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].id == id {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

func sortedAcqKeys(m map[string]lockAcq) []string {
	keys := make([]string, 0, len(m))
	for id := range m {
		keys = append(keys, id)
	}
	sort.Strings(keys)
	return keys
}
