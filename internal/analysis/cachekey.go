package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CacheKeyPackages names the packages (by final import-path segment) that
// build long-lived cache keys from marketplace-controlled names. The
// analysis packages themselves are included: dancevet is subject to its own
// rules (the CI sweep covers ./..., and the suppression sites inside the
// analyzers double as living documentation of the mechanism).
var CacheKeyPackages = map[string]bool{
	"search":       true,
	"joingraph":    true,
	"offline":      true,
	"core":         true,
	"sampling":     true,
	"safekey":      true,
	"analysis":     true,
	"analysistest": true,
}

// PathSinkPackages names the packages whose string expressions reach the
// filesystem: there, a marketplace-controlled name is a path-traversal
// primitive as well as an aliasing one.
var PathSinkPackages = map[string]bool{
	"datadir": true,
}

// Cachekey flags cache keys assembled by joining attacker-controllable
// strings with printable separators — the exact PR 4 JICache bug: dataset
// and attribute names are seller- and shopper-controlled free text, so
// "a|b" + "|" + "c" and "a" + "|" + "b|c" collide and two different
// (instance pair, join attrs) composites silently share one cached
// estimate. Keys must separate dynamic parts with non-printable bytes
// (\x00 between list elements, \x01 between sections — the repo
// convention) or use safekey.Join, which length-prefixes and is injective
// regardless of content.
//
// v2 is flow-sensitive: expressions are resolved through Pass.Flow, so a
// join laundered through a local variable or a same-package helper
// (`key := compose(a, b)` where compose returns a + "|" + b) is caught, and
// operands that originate from a known taint source (marketplace/workload
// listing names, HTTP request fields) are called out in the message. Sinks
// are the v1 key-shaped places (assignments, arguments and returns whose
// name contains "key"), string-keyed map index expressions, and — in
// PathSinkPackages — file-path arguments, where a tainted operand alone is
// reported even without a join. strconv.Itoa/Format* results and %d/%q
// verbs stay exempt: numbers and quoted strings cannot smuggle a separator.
var Cachekey = &Analyzer{
	Name: "cachekey",
	Doc: "cache keys must not join attacker-controllable strings with " +
		"printable separators; use \\x00/\\x01 separators or safekey.Join " +
		"(the PR 4 JICache aliasing bug); flows through helpers are followed",
}

// Run is attached in init: runCachekey reaches ByName (through
// Pass.SuppressedAt → parseSuppressions), which closes an initialization
// cycle back to Cachekey if referenced from the literal.
func init() { Cachekey.Run = runCachekey }

func runCachekey(pass *Pass) error {
	seg := lastSegment(pass.Pkg.Path())
	keyPkg := CacheKeyPackages[seg]
	pathPkg := PathSinkPackages[seg]
	if !keyPkg && !pathPkg {
		return nil
	}
	fl := pass.Flow()
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		var funcStack []*ast.FuncDecl
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				funcStack = append(funcStack, n)
			case *ast.AssignStmt:
				if !keyPkg {
					break
				}
				for i, lhs := range n.Lhs {
					if !keyShapedExpr(lhs) {
						continue
					}
					if i < len(n.Rhs) {
						checkKeyExpr(pass, fl, n.Rhs[i])
					} else if len(n.Rhs) == 1 {
						checkKeyExpr(pass, fl, n.Rhs[0])
					}
				}
			case *ast.CallExpr:
				if keyPkg {
					checkKeyArgs(pass, fl, n)
				}
				if pathPkg {
					checkPathArgs(pass, fl, n)
				}
			case *ast.IndexExpr:
				if keyPkg && stringKeyedMap(pass.TypeOf(n.X)) {
					checkKeyExpr(pass, fl, n.Index)
				}
			case *ast.ReturnStmt:
				if keyPkg && len(funcStack) > 0 && keyShapedName(funcStack[len(funcStack)-1].Name.Name) {
					for _, r := range n.Results {
						checkKeyExpr(pass, fl, r)
					}
				}
			}
			return true
		})
	}
	return nil
}

func keyShapedName(name string) bool {
	return strings.Contains(strings.ToLower(name), "key")
}

func keyShapedExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return keyShapedName(e.Name)
	case *ast.SelectorExpr:
		return keyShapedName(e.Sel.Name)
	case *ast.IndexExpr:
		return keyShapedExpr(e.X)
	}
	return false
}

// stringKeyedMap reports whether t is a map type whose key is string-ish —
// the index expression of such a map is a cache-key sink.
func stringKeyedMap(t types.Type) bool {
	if t == nil {
		return false
	}
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	b, ok := m.Key().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// checkKeyArgs checks call arguments bound to parameters whose name
// contains "key".
func checkKeyArgs(pass *Pass, fl *Flow, call *ast.CallExpr) {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil {
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		if pi >= sig.Params().Len() {
			break
		}
		if keyShapedName(sig.Params().At(pi).Name()) {
			checkKeyExpr(pass, fl, arg)
		}
	}
}

// pathSinkFuncs are the stdlib calls whose string arguments name filesystem
// paths. For filepath.Join every argument is a path component; for the os
// functions only the first argument is.
var pathSinkFuncs = map[string]bool{
	"path/filepath.Join": true,
	"os.Create":          true,
	"os.Open":            true,
	"os.ReadFile":        true,
	"os.WriteFile":       true,
	"os.MkdirAll":        true,
	"os.Remove":          true,
	"os.RemoveAll":       true,
}

// checkPathArgs checks file-path arguments (PathSinkPackages only): a
// printable join aliases two paths just like a cache key, and a tainted
// operand alone can traverse out of the data directory.
func checkPathArgs(pass *Pass, fl *Flow, call *ast.CallExpr) {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	qualified := f.Pkg().Path() + "." + f.Name()
	//dancevet:ignore cachekey import paths and func names come from compiled source, not an adversary
	if !pathSinkFuncs[qualified] {
		return
	}
	args := call.Args
	if f.Pkg().Path() == "os" && len(args) > 1 {
		args = args[:1]
	}
	for _, arg := range args {
		ops := fl.Flatten(arg)
		if reportPrintableJoins(pass, arg, ops, "file path") {
			continue
		}
		for _, op := range ops {
			if op.Taint != "" {
				pass.Reportf(arg.Pos(),
					"file path includes %s without sanitization: a hostile name "+
						"containing separators or \"..\" can alias or escape the data "+
						"directory; hash the name or use safekey.Join%s",
					op.Taint, viaClause(op))
				break
			}
		}
	}
}

func checkKeyExpr(pass *Pass, fl *Flow, e ast.Expr) {
	reportPrintableJoins(pass, e, fl.Flatten(e), "cache key")
}

// reportPrintableJoins scans the flattened composition for two dynamic
// operands whose intervening constant text is non-empty and entirely
// printable, and reports the first such join with its provenance.
func reportPrintableJoins(pass *Pass, site ast.Expr, ops []Op, what string) bool {
	var left *Op
	sep := ""
	via := ""
	var sepPos token.Pos
	for i := range ops {
		op := &ops[i]
		if !op.Dynamic {
			if left != nil {
				if sep == "" && op.Sep != "" {
					sepPos = op.Pos
				}
				sep += op.Sep
				if op.Via != "" {
					via = op.Via
				}
			}
			continue
		}
		if left != nil && sep != "" && printable(sep) {
			// A directive at the join's origin covers every flow through it
			// (one suppression at the helper, not one per call site).
			if pass.SuppressedAt(pass.Analyzer.Name, sepPos) {
				left = op
				sep = ""
				via = ""
				continue
			}
			if via == "" {
				via = firstVia(left, op)
			}
			extra := ""
			if via != "" {
				extra += " (flows through " + via + ")"
			}
			if t := firstTaint(left, op); t != "" {
				extra += " (operand is " + t + ")"
			}
			pass.Reportf(site.Pos(),
				"%s joins two attacker-controllable strings with printable separator %q: "+
					"hostile dataset/attribute names can alias two different keys "+
					"(PR 4 JICache bug); separate with \\x00/\\x01 or use safekey.Join%s",
				what, sep, extra)
			return true
		}
		left = op
		sep = ""
		via = ""
	}
	return false
}

func firstVia(ops ...*Op) string {
	for _, op := range ops {
		if op != nil && op.Via != "" {
			return op.Via
		}
	}
	return ""
}

func firstTaint(ops ...*Op) string {
	for _, op := range ops {
		if op != nil && op.Taint != "" {
			return op.Taint
		}
	}
	return ""
}

func viaClause(op Op) string {
	if op.Via == "" {
		return ""
	}
	return " (flows through " + op.Via + ")"
}

// numericSafeCall reports calls whose string result cannot contain a chosen
// separator byte: number formatting and quoting.
func numericSafeCall(f *types.Func) bool {
	if f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "strconv":
		switch f.Name() {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "FormatBool", "Quote", "QuoteToASCII":
			return true
		}
	}
	return false
}

// printable reports whether every byte of s is in the printable ASCII
// range — the property that makes a separator spoofable by a hostile name.
func printable(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] == 0x7f {
			return false
		}
	}
	return len(s) > 0
}
