package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// CacheKeyPackages names the packages (by final import-path segment) that
// build long-lived cache keys from marketplace-controlled names.
var CacheKeyPackages = map[string]bool{
	"search":    true,
	"joingraph": true,
	"offline":   true,
	"core":      true,
	"sampling":  true,
	"safekey":   true,
}

// Cachekey flags cache keys assembled by joining attacker-controllable
// strings with printable separators — the exact PR 4 JICache bug: dataset
// and attribute names are seller- and shopper-controlled free text, so
// "a|b" + "|" + "c" and "a" + "|" + "b|c" collide and two different
// (instance pair, join attrs) composites silently share one cached
// estimate. Keys must separate dynamic parts with non-printable bytes
// (\x00 between list elements, \x01 between sections — the repo
// convention) or use safekey.Join, which length-prefixes and is injective
// regardless of content.
//
// The analyzer looks at expressions that flow into key-shaped places — an
// assignment to a variable or field whose name contains "key", an argument
// to a parameter so named, or a return from a function so named — and
// reports when two non-constant string operands are separated only by
// printable constant text. strconv.Itoa/Format* results and %d/%q verbs
// are exempt: numbers and quoted strings cannot smuggle a separator.
var Cachekey = &Analyzer{
	Name: "cachekey",
	Doc: "cache keys must not join attacker-controllable strings with " +
		"printable separators; use \\x00/\\x01 separators or safekey.Join " +
		"(the PR 4 JICache aliasing bug)",
	Run: runCachekey,
}

func runCachekey(pass *Pass) error {
	if !CacheKeyPackages[lastSegment(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		var funcStack []*ast.FuncDecl
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				funcStack = append(funcStack, n)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if !keyShapedExpr(lhs) {
						continue
					}
					if i < len(n.Rhs) {
						checkKeyExpr(pass, n.Rhs[i])
					} else if len(n.Rhs) == 1 {
						checkKeyExpr(pass, n.Rhs[0])
					}
				}
			case *ast.CallExpr:
				checkKeyArgs(pass, n)
			case *ast.ReturnStmt:
				if len(funcStack) > 0 && keyShapedName(funcStack[len(funcStack)-1].Name.Name) {
					for _, r := range n.Results {
						checkKeyExpr(pass, r)
					}
				}
			}
			return true
		})
	}
	return nil
}

func keyShapedName(name string) bool {
	return strings.Contains(strings.ToLower(name), "key")
}

func keyShapedExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return keyShapedName(e.Name)
	case *ast.SelectorExpr:
		return keyShapedName(e.Sel.Name)
	case *ast.IndexExpr:
		return keyShapedExpr(e.X)
	}
	return false
}

// checkKeyArgs checks call arguments bound to parameters whose name
// contains "key".
func checkKeyArgs(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil {
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len() {
			pi = sig.Params().Len() - 1
		}
		if pi >= sig.Params().Len() {
			break
		}
		if keyShapedName(sig.Params().At(pi).Name()) {
			checkKeyExpr(pass, arg)
		}
	}
}

// operand classifies one piece of a key-building expression.
type operand struct {
	// sep is non-empty constant text (separator material); dynamic marks a
	// non-constant string whose content an adversary may control.
	sep     string
	dynamic bool
	pos     ast.Expr
}

func checkKeyExpr(pass *Pass, e ast.Expr) {
	ops := flattenKeyExpr(pass, e, nil)
	reportPrintableJoins(pass, e, ops)
}

// reportPrintableJoins scans the operand sequence for two dynamic operands
// whose intervening constant text is non-empty and entirely printable.
func reportPrintableJoins(pass *Pass, site ast.Expr, ops []operand) {
	seenDynamic := false
	sep := ""
	for _, op := range ops {
		if !op.dynamic {
			if seenDynamic {
				sep += op.sep
			}
			continue
		}
		if seenDynamic && sep != "" && printable(sep) {
			pass.Reportf(site.Pos(),
				"cache key joins two attacker-controllable strings with printable separator %q: "+
					"hostile dataset/attribute names can alias two different keys "+
					"(PR 4 JICache bug); separate with \\x00/\\x01 or use safekey.Join", sep)
			return
		}
		seenDynamic = true
		sep = ""
	}
}

// flattenKeyExpr reduces e to a sequence of constant separators and dynamic
// string operands, recursing through +, Sprintf and strings.Join.
func flattenKeyExpr(pass *Pass, e ast.Expr, ops []operand) []operand {
	e = ast.Unparen(e)
	// Constant folding first: a constant of any shape is separator text.
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		if tv.Value.Kind() == constant.String {
			ops = append(ops, operand{sep: constant.StringVal(tv.Value), pos: e})
			return ops
		}
	}
	switch ex := e.(type) {
	case *ast.BinaryExpr:
		if t := pass.TypeOf(ex); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				ops = flattenKeyExpr(pass, ex.X, ops)
				ops = flattenKeyExpr(pass, ex.Y, ops)
				return ops
			}
		}
	case *ast.CallExpr:
		f := calleeFunc(pass.TypesInfo, ex)
		switch {
		case isPkgFunc(f, "strings", "Join"):
			// elems joined by a constant separator: the elems are dynamic;
			// a printable (or empty-with-multiple-elems) separator between
			// dynamic elements is the bug. Model as dynamic·sep·dynamic.
			sep, isConst := constString(pass, ex.Args[1])
			if isConst {
				ops = append(ops, operand{dynamic: true, pos: ex})
				if sep != "" {
					ops = append(ops, operand{sep: sep, pos: ex})
				}
				ops = append(ops, operand{dynamic: true, pos: ex})
				return ops
			}
		case isPkgFunc(f, "fmt", "Sprintf"):
			return flattenSprintf(pass, ex, ops)
		case f != nil && f.Pkg() != nil && lastSegment(f.Pkg().Path()) == "safekey":
			// safekey.Join output is injective: treat as a single opaque
			// dynamic operand (joining *it* with printable separators is
			// still flagged — the outer join can alias).
			ops = append(ops, operand{dynamic: true, pos: ex})
			return ops
		case f != nil && numericSafeCall(f):
			// Numbers cannot contain separators; quoted strings escape them.
			ops = append(ops, operand{sep: "", pos: ex})
			return ops
		}
	}
	// Anything else with string type is a dynamic operand; non-strings are
	// inert (they only appear via Sprintf verbs handled above).
	if t := pass.TypeOf(e); t != nil {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			ops = append(ops, operand{dynamic: true, pos: e})
		}
	}
	return ops
}

// flattenSprintf models a Sprintf call: literal format chunks are
// separators; %s/%v verbs with string-typed arguments are dynamic; numeric
// and %q/%x verbs are safe.
func flattenSprintf(pass *Pass, call *ast.CallExpr, ops []operand) []operand {
	if len(call.Args) == 0 {
		return ops
	}
	format, ok := constString(pass, call.Args[0])
	if !ok {
		ops = append(ops, operand{dynamic: true, pos: call})
		return ops
	}
	argIdx := 1
	lit := strings.Builder{}
	flushLit := func() {
		if lit.Len() > 0 {
			ops = append(ops, operand{sep: lit.String(), pos: call})
			lit.Reset()
		}
	}
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			lit.WriteByte(format[i])
			continue
		}
		i++
		// Skip flags/width.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.*", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		if verb == '%' {
			lit.WriteByte('%')
			continue
		}
		dynamic := false
		if verb == 's' || verb == 'v' {
			if argIdx < len(call.Args) {
				if t := pass.TypeOf(call.Args[argIdx]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						dynamic = true
					} else if _, isBasic := t.Underlying().(*types.Basic); !isBasic {
						dynamic = true // Stringers render arbitrary text
					}
				}
			}
		}
		if dynamic {
			flushLit()
			ops = append(ops, operand{dynamic: true, pos: call})
		}
		// Safe verbs contribute nothing an adversary controls; their
		// rendered text still breaks up separators, so reset the literal
		// run only for dynamic verbs (handled by flushLit above) — numeric
		// text between two dynamics cannot be controlled, so it stays part
		// of the separator? No: a number *can* be chosen adversarially in
		// some callers. Be conservative and treat it as a boundary.
		if !dynamic && verb != '%' {
			flushLit()
			ops = append(ops, operand{sep: "", pos: call})
		}
		argIdx++
	}
	flushLit()
	return ops
}

func constString(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// numericSafeCall reports calls whose string result cannot contain a chosen
// separator byte: number formatting and quoting.
func numericSafeCall(f *types.Func) bool {
	if f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "strconv":
		switch f.Name() {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "FormatBool", "Quote", "QuoteToASCII":
			return true
		}
	}
	return false
}

// printable reports whether every byte of s is in the printable ASCII
// range — the property that makes a separator spoofable by a hostile name.
func printable(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] == 0x7f {
			return false
		}
	}
	return len(s) > 0
}
