package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/dance-db/dance/internal/analysis"
	"github.com/dance-db/dance/internal/analysis/analysistest"
)

// TestLoadAndRunDriver drives the real pipeline — go list -export, gc
// export-data import, type-check, analyze, suppress — over the tiny module
// in testdata/driver, the same way cmd/dancevet runs over the repo.
func TestLoadAndRunDriver(t *testing.T) {
	dir := filepath.Join(analysistest.TestData(), "driver")
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: dir, Tests: true}, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load returned no packages")
	}
	findings, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range findings {
		t.Logf("finding: %s", f)
	}
	if len(findings) != 1 {
		t.Fatalf("want exactly the seeded cachekey finding, got %d", len(findings))
	}
	f := findings[0]
	if f.Analyzer != "cachekey" || !strings.Contains(f.Message, "printable separator") {
		t.Fatalf("unexpected finding: %s", f)
	}
	if !strings.HasSuffix(f.Pos.Filename, "keys.go") {
		t.Fatalf("finding at unexpected file: %s", f.Pos.Filename)
	}
}
