package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxflow enforces the context-first API discipline PR 2 established after
// context-free paths hung forever against slow marketplaces:
//
//   - an exported function (or method on an exported type) in an internal/
//     package that calls anything taking a context.Context must itself
//     accept a ctx as its first parameter and forward it. A function that
//     manufactures its own context severs the caller's cancellation and
//     deadline chain — exactly how the pre-PR-2 engine kept buying samples
//     for requests whose shoppers had long hung up.
//   - context.Background()/context.TODO() are reserved for package main and
//     tests. Library code that needs a context must be handed one.
//
// Closures are not a boundary for either rule: rule 1 inspects an exported
// function's whole body, so a manufactured context reaching a call inside a
// `go func` literal — or through a bound method value — still flags the
// function, while a ctx declared *inside* the literal launders rule 1 (a
// local is indistinguishable from a threaded-in context) but leaves rule 2
// to flag the Background/TODO call that created it.
// testdata/src/ctxflow/internal/edge pins these behaviors.
//
// Intentional roots (the deprecated facade shims, the shared cmd/ signal
// context helper) carry //dancevet:ignore ctxflow directives.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "flags exported internal/ functions that call context-taking code " +
		"without accepting a ctx first parameter, and context.Background/TODO " +
		"outside package main and tests",
	Run: runCtxflow,
}

func runCtxflow(pass *Pass) error {
	inInternal := pathHasSegment(pass.Pkg.Path(), "internal")
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		testFile := pass.IsTestFile(file.Pos())
		// Rule 2: no ad-hoc context roots outside main and tests.
		if !isMain && !testFile {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(pass.TypesInfo, call)
				if f == nil || f.Pkg() == nil || f.Pkg().Path() != "context" {
					return true
				}
				if f.Name() == "Background" || f.Name() == "TODO" {
					pass.Reportf(call.Pos(),
						"context.%s creates a context root outside package main or a test, "+
							"severing the caller's cancellation chain (pre-PR-2 hang class); "+
							"accept a ctx from the caller instead", f.Name())
				}
				return true
			})
		}
		// Rule 1: exported internal/ functions must thread ctx.
		if !inInternal || testFile {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxThreading(pass, fd)
		}
	}
	return nil
}

func checkCtxThreading(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || !receiverExported(pass, fd) {
		return
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := obj.Type().(*types.Signature)
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			if i != 0 {
				pass.Reportf(fd.Name.Pos(),
					"exported %s takes a context.Context but not as its first parameter; "+
						"the repo's v1 API convention is ctx-first", fd.Name.Name)
			}
			return // has a ctx; assume it forwards
		}
	}
	// No ctx parameter: find a call that passes a context the caller never
	// provided — a package-level ctx (the pre-refactor experiments pattern),
	// a ctx stored in a struct field, or a fresh Background()/TODO(). A ctx
	// rooted in an enclosing function-literal parameter (HTTP handlers
	// deriving r.Context()) is legitimately caller-provided.
	var offending *ast.CallExpr
	var calleeName string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if offending != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		csig, ok := pass.TypeOf(call.Fun).(*types.Signature)
		if !ok {
			return true // conversion or built-in
		}
		if csig.Params().Len() == 0 || !isContextType(csig.Params().At(0).Type()) {
			return true
		}
		if len(call.Args) == 0 || !unrootedCtx(pass, call.Args[0]) {
			return true
		}
		offending = call
		calleeName = types.ExprString(call.Fun)
		return false
	})
	if offending == nil {
		return
	}
	pass.Reportf(fd.Name.Pos(),
		"exported %s calls %s with a context the caller never provided; "+
			"accept ctx context.Context as the first parameter and forward it "+
			"so callers can cancel (pre-PR-2 hang class)", fd.Name.Name, calleeName)
}

// unrootedCtx reports whether the context expression is manufactured rather
// than derived from a caller: a direct Background()/TODO() call, a
// package-level variable, or a struct-field-stored context.
func unrootedCtx(pass *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := pass.ObjectOf(e).(*types.Var)
		if !ok {
			return false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level ctx: nothing the caller controls
		}
		return false
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return true // ctx stored in a struct field
		}
		v, ok := pass.ObjectOf(e.Sel).(*types.Var)
		return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
	case *ast.CallExpr:
		f := calleeFunc(pass.TypesInfo, e)
		if f != nil && f.Pkg() != nil && f.Pkg().Path() == "context" &&
			(f.Name() == "Background" || f.Name() == "TODO") {
			return true
		}
		return false
	}
	return false
}

// receiverExported reports whether fd is a plain function or a method on an
// exported named type. Methods on unexported types are not reachable from
// outside the package, so the invariant does not apply.
func receiverExported(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return true
	}
	return named.Obj().Exported()
}
