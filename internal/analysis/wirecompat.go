package analysis

import (
	"encoding/json"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
)

// WireContractPackages names the packages (by final import-path segment)
// whose JSON-tagged structs are the frozen v1 wire surface: the danced
// service API (root package), marketd's marketplace protocol, and the
// workload generator's ground-truth record (a contract with the scenario
// matrix and with saved truth files on disk).
var WireContractPackages = map[string]bool{
	"dance":       true,
	"marketplace": true,
	"workload":    true,
}

// wireSchemaBase is the golden file's path under the module root.
const wireSchemaBase = "api/v1.schema.json"

// Wirecompat extracts the v1 JSON contract — field names, wire types,
// omitempty, and enum-ish string sets — from the wire structs of
// WireContractPackages and compares it against the committed golden
// api/v1.schema.json. Removals, renames, type changes, omitempty flips and
// enum-value removals are breaking for deployed clients and saved truth
// files, and are reported as such; additions only ask for a golden
// regeneration (`go run ./cmd/dancevet -write-schema api/v1.schema.json`),
// keeping the gate mechanical. Referenced structs are followed through
// go/types, so untagged types that marshal by Go field names (ScoreWeights,
// pricing.Query) are frozen too — exactly the fields a well-meaning rename
// would silently break.
//
// Inside a fixture, a `v1.schema.json` next to the sources overrides the
// module-root golden.
var Wirecompat = &Analyzer{
	Name: "wirecompat",
	Doc: "the v1 JSON wire contract (field names, types, omitempty, enum " +
		"values) must match the committed api/v1.schema.json golden; " +
		"removals/renames/type changes are breaking, additions regenerate " +
		"the golden",
	Run: runWirecompat,
}

// WireSchema is the serialized golden contract.
type WireSchema struct {
	Version string              `json:"version"`
	Types   map[string]WireType `json:"types"`
}

// WireType is one struct on the wire, keyed by wire field name.
type WireType struct {
	Fields map[string]WireField `json:"fields"`
}

// WireField is one field's contract.
type WireField struct {
	// Go is the Go field name (rename detection: same Go name, different
	// wire name).
	Go string `json:"go"`
	// Type is the rendered wire type ("string", "number", "integer",
	// "boolean", "array<T>", "object<K,V>", "*T", a qualified struct key, or
	// "any").
	Type string `json:"type"`
	// Omitempty records the `,omitempty` tag option.
	Omitempty bool `json:"omitempty,omitempty"`
	// Values is the enum-ish set of constant strings the package assigns to
	// this field, when any.
	Values []string `json:"values,omitempty"`
}

func runWirecompat(pass *Pass) error {
	if !WireContractPackages[lastSegment(pass.Pkg.Path())] {
		return nil
	}
	ex := extractWire(pass.Fset, pass.Files, pass.TypesInfo)
	if len(ex.types) == 0 {
		return nil
	}
	goldenPath, golden, err := loadGolden(pass.Dir)
	if err != nil {
		pass.Reportf(ex.anchor, "golden schema %s is unreadable: %v", goldenPath, err)
		return nil
	}
	if golden == nil {
		pass.Reportf(ex.anchor,
			"package has v1 wire types but no golden schema at %s; generate it with "+
				"`go run ./cmd/dancevet -write-schema %s`", goldenPath, wireSchemaBase)
		return nil
	}
	compareWire(pass, ex, golden)
	return nil
}

// loadGolden finds the golden schema: a v1.schema.json next to the package
// sources (fixtures) wins, else <module root>/api/v1.schema.json. A (path,
// nil, nil) return means the expected golden does not exist yet.
func loadGolden(dir string) (string, *WireSchema, error) {
	candidates := []string{filepath.Join(dir, "v1.schema.json")}
	for d := dir; d != "" && d != string(filepath.Separator); d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			candidates = append(candidates, filepath.Join(d, filepath.FromSlash(wireSchemaBase)))
			break
		}
		if filepath.Dir(d) == d {
			break
		}
	}
	for i, path := range candidates {
		data, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				if i == len(candidates)-1 {
					return path, nil, nil
				}
				continue
			}
			return path, nil, err
		}
		var s WireSchema
		if err := json.Unmarshal(data, &s); err != nil {
			return path, nil, err
		}
		return path, &s, nil
	}
	return wireSchemaBase, nil, nil
}

func compareWire(pass *Pass, ex *wireExtraction, golden *WireSchema) {
	var regen []string
	for _, key := range sortedWireKeys(ex.types) {
		got := ex.types[key]
		pos := ex.posOf(key)
		want, ok := golden.Types[key]
		if !ok {
			regen = append(regen, "new wire type "+key)
			continue
		}
		// Index extracted fields by Go name for rename detection.
		byGo := map[string]string{}
		for wname, f := range got.Fields {
			byGo[f.Go] = wname
		}
		renamedTo := map[string]bool{}
		wantNames := make([]string, 0, len(want.Fields))
		for wname := range want.Fields {
			wantNames = append(wantNames, wname)
		}
		sort.Strings(wantNames)
		for _, wname := range wantNames {
			wf := want.Fields[wname]
			gf, ok := got.Fields[wname]
			if !ok {
				if newName, renamed := byGo[wf.Go]; renamed && newName != wname {
					renamedTo[newName] = true
					pass.Reportf(pos,
						"v1 field %q of %s was renamed to %q on the wire — breaking for "+
							"deployed clients; keep the old name or add a v2 type", wname, key, newName)
					continue
				}
				pass.Reportf(pos,
					"v1 field %q of %s was removed from the wire — breaking for deployed "+
						"clients; additions are fine, removals need a v2", wname, key)
				continue
			}
			if gf.Type != wf.Type {
				pass.Reportf(pos,
					"v1 field %q of %s changed wire type %s → %s — breaking for deployed clients",
					wname, key, wf.Type, gf.Type)
			}
			if gf.Omitempty != wf.Omitempty {
				pass.Reportf(pos,
					"v1 field %q of %s changed omitempty %v → %v — changes when the field "+
						"appears on the wire", wname, key, wf.Omitempty, gf.Omitempty)
			}
			gotValues := map[string]bool{}
			for _, v := range gf.Values {
				gotValues[v] = true
			}
			for _, v := range wf.Values {
				if !gotValues[v] {
					pass.Reportf(pos,
						"v1 field %q of %s no longer carries wire value %q — breaking for "+
							"clients switching on it", wname, key, v)
				}
			}
			if len(gf.Values) > len(wf.Values) {
				regen = append(regen, "new values on "+key+"."+wname)
			}
		}
		for _, wname := range sortedFieldKeys(got.Fields) {
			if _, ok := want.Fields[wname]; !ok && !renamedTo[wname] {
				regen = append(regen, "new field "+wname+" on "+key)
			}
		}
	}
	// Types the golden pins under this package's name that no longer exist.
	prefix := pass.Pkg.Name() + "."
	goldenKeys := make([]string, 0, len(golden.Types))
	for key := range golden.Types {
		goldenKeys = append(goldenKeys, key)
	}
	sort.Strings(goldenKeys)
	for _, key := range goldenKeys {
		if strings.HasPrefix(key, prefix) {
			if _, ok := ex.types[key]; !ok {
				pass.Reportf(ex.anchor,
					"v1 wire type %s was removed but the golden %s still declares it — "+
						"breaking; restore it or ship a v2", key, wireSchemaBase)
			}
		}
	}
	if len(regen) > 0 {
		pass.Reportf(ex.anchor,
			"wire surface grew (%s): regenerate the golden with "+
				"`go run ./cmd/dancevet -write-schema %s`",
			strings.Join(regen, ", "), wireSchemaBase)
	}
}

// ExtractWireSchema builds the full schema over every contract package, for
// `cmd/dancevet -write-schema`.
func ExtractWireSchema(pkgs []*Package) *WireSchema {
	s := &WireSchema{Version: "v1", Types: map[string]WireType{}}
	for _, pkg := range pkgs {
		if !WireContractPackages[lastSegment(pkg.Path)] {
			continue
		}
		ex := extractWire(pkg.Fset, pkg.Files, pkg.Info)
		for key, wt := range ex.types {
			s.Types[key] = *wt
		}
	}
	return s
}

// wireExtraction is the contract extracted from one package: wire types
// keyed "pkg.Type", with source positions for reporting.
type wireExtraction struct {
	types  map[string]*WireType
	pos    map[string]token.Pos
	anchor token.Pos // package-level fallback position
}

func (ex *wireExtraction) posOf(key string) token.Pos {
	if p, ok := ex.pos[key]; ok {
		return p
	}
	return ex.anchor
}

func extractWire(fset *token.FileSet, files []*ast.File, info *types.Info) *wireExtraction {
	ex := &wireExtraction{types: map[string]*WireType{}, pos: map[string]token.Pos{}}
	var worklist []*types.Named
	seen := map[string]bool{}
	enqueue := func(named *types.Named) {
		key := wireTypeKey(named)
		if key == "" || seen[key] {
			return
		}
		seen[key] = true
		worklist = append(worklist, named)
	}

	// Roots: structs declared in this package with at least one json tag.
	for _, file := range files {
		if isTestFilename(fset, file.Pos()) {
			continue
		}
		if ex.anchor == token.NoPos {
			ex.anchor = file.Name.Pos()
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj := info.Defs[ts.Name]
				if obj == nil {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok || !hasJSONTag(st) {
					continue
				}
				ex.pos[wireTypeKey(named)] = ts.Name.Pos()
				enqueue(named)
			}
		}
	}

	for len(worklist) > 0 {
		named := worklist[0]
		worklist = worklist[1:]
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		wt := WireType{Fields: map[string]WireField{}}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() && !f.Embedded() {
				continue
			}
			tag := reflect.StructTag(st.Tag(i)).Get("json")
			name, opts := parseJSONTag(tag)
			if name == "-" && !strings.Contains(tag, ",") {
				continue
			}
			rendered := renderWireType(f.Type(), enqueue)
			switch {
			case f.Embedded() && name == "":
				// encoding/json inlines untagged embedded structs; pin the
				// embedding itself and freeze the embedded type separately.
				wt.Fields["<embed>"+rendered] = WireField{Go: f.Name(), Type: rendered}
			default:
				if name == "" {
					if !f.Exported() {
						continue
					}
					name = f.Name()
				}
				wt.Fields[name] = WireField{
					Go:        f.Name(),
					Type:      rendered,
					Omitempty: hasOption(opts, "omitempty"),
				}
			}
		}
		ex.types[wireTypeKey(named)] = &wt
	}

	collectWireValues(fset, files, info, ex)
	return ex
}

// collectWireValues harvests constant strings assigned to string fields of
// contract types — the enum-ish sets (ledger Kind, error Code) clients
// switch on.
func collectWireValues(fset *token.FileSet, files []*ast.File, info *types.Info, ex *wireExtraction) {
	record := func(named *types.Named, goField, value string) {
		wt, ok := ex.types[wireTypeKey(named)]
		if !ok {
			return
		}
		for wname, f := range wt.Fields {
			if f.Go != goField {
				continue
			}
			if f.Type != "string" {
				return
			}
			for _, v := range f.Values {
				if v == value {
					return
				}
			}
			f.Values = append(f.Values, value)
			sort.Strings(f.Values)
			wt.Fields[wname] = f
			return
		}
	}
	constStr := func(e ast.Expr) (string, bool) {
		tv, ok := info.Types[e]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return "", false
		}
		return constant.StringVal(tv.Value), true
	}
	namedOf := func(t types.Type) *types.Named {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, _ := t.(*types.Named)
		return named
	}
	for _, file := range files {
		if isTestFilename(fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				tv, ok := info.Types[n]
				if !ok {
					return true
				}
				named := namedOf(tv.Type)
				if named == nil {
					return true
				}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					if v, ok := constStr(kv.Value); ok {
						record(named, key.Name, v)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					selection, ok := info.Selections[sel]
					if !ok || selection.Kind() != types.FieldVal {
						continue
					}
					named := namedOf(selection.Recv())
					if named == nil {
						continue
					}
					if v, ok := constStr(n.Rhs[i]); ok {
						record(named, sel.Sel.Name, v)
					}
				}
			}
			return true
		})
	}
}

func wireTypeKey(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	//dancevet:ignore cachekey Go identifiers cannot contain dots, so pkg.Type is injective
	return obj.Pkg().Name() + "." + obj.Name()
}

// renderWireType maps a Go type to its wire rendering, enqueueing named
// structs for their own extraction.
func renderWireType(t types.Type, enqueue func(*types.Named)) string {
	switch tt := t.(type) {
	case *types.Pointer:
		return "*" + renderWireType(tt.Elem(), enqueue)
	case *types.Slice:
		if b, ok := tt.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
			return "string" // []byte marshals as base64 text
		}
		return "array<" + renderWireType(tt.Elem(), enqueue) + ">"
	case *types.Array:
		return "array<" + renderWireType(tt.Elem(), enqueue) + ">"
	case *types.Map:
		//dancevet:ignore cachekey wire renderings are human-facing labels; Go type syntax cannot contain "," ambiguously
		return "object<" + renderWireType(tt.Key(), enqueue) + "," +
			renderWireType(tt.Elem(), enqueue) + ">"
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "time":
				if obj.Name() == "Time" {
					return "string"
				}
				if obj.Name() == "Duration" {
					return "integer"
				}
			case "encoding/json":
				if obj.Name() == "RawMessage" {
					return "raw"
				}
			}
		}
		if _, ok := tt.Underlying().(*types.Struct); ok {
			enqueue(tt)
			return wireTypeKey(tt)
		}
		return renderWireType(tt.Underlying(), enqueue)
	case *types.Basic:
		info := tt.Info()
		switch {
		case info&types.IsBoolean != 0:
			return "boolean"
		case info&types.IsInteger != 0:
			return "integer"
		case info&types.IsFloat != 0:
			return "number"
		case info&types.IsString != 0:
			return "string"
		}
	case *types.Interface:
		return "any"
	case *types.Alias:
		return renderWireType(types.Unalias(tt), enqueue)
	}
	return t.String()
}

func hasJSONTag(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if _, ok := reflect.StructTag(st.Tag(i)).Lookup("json"); ok {
			return true
		}
	}
	return false
}

func parseJSONTag(tag string) (name string, opts []string) {
	parts := strings.Split(tag, ",")
	return parts[0], parts[1:]
}

func hasOption(opts []string, opt string) bool {
	for _, o := range opts {
		if o == opt {
			return true
		}
	}
	return false
}

func isTestFilename(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

func sortedWireKeys(m map[string]*WireType) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedFieldKeys(m map[string]WireField) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
