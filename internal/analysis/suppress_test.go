package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSuppressionSrc(t *testing.T, src string) (map[string][]*suppression, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bySite, malformed := parseSuppressions(fset, []*ast.File{f})
	return bySite, malformed
}

func TestSuppressionTrailingCoversOwnLine(t *testing.T) {
	bySite, malformed := parseSuppressionSrc(t, `package p

func f() int {
	x := 1 //dancevet:ignore detfloat trailing directive
	return x
}
`)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed: %v", malformed)
	}
	if s := bySite[siteKey("fix.go", 4)]; len(s) != 1 || !s[0].Suppresses("detfloat") {
		t.Fatalf("line 4 not covered: %v", s)
	}
	if s := bySite[siteKey("fix.go", 5)]; len(s) != 0 {
		t.Fatalf("trailing directive must not cover the next line: %v", s)
	}
}

func TestSuppressionStandaloneCoversNextLine(t *testing.T) {
	bySite, malformed := parseSuppressionSrc(t, `package p

func f() int {
	//dancevet:ignore cachekey,errsentinel two analyzers, one reason
	x := 1
	return x
}
`)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed: %v", malformed)
	}
	s := bySite[siteKey("fix.go", 5)]
	if len(s) != 1 {
		t.Fatalf("next line not covered: %v", s)
	}
	if !s[0].Suppresses("cachekey") || !s[0].Suppresses("errsentinel") {
		t.Fatalf("comma list not honored: %+v", s[0])
	}
	if s[0].Suppresses("detfloat") {
		t.Fatal("suppression leaked to an unnamed analyzer")
	}
}

func TestSuppressionMissingReasonIsMalformed(t *testing.T) {
	_, malformed := parseSuppressionSrc(t, `package p

//dancevet:ignore detfloat
var X = 1
`)
	if len(malformed) != 1 || !strings.Contains(malformed[0].Message, "reason is mandatory") {
		t.Fatalf("want one missing-reason diagnostic, got %v", malformed)
	}
}

func TestSuppressionUnknownAnalyzerIsMalformed(t *testing.T) {
	_, malformed := parseSuppressionSrc(t, `package p

//dancevet:ignore nosuch the analyzer name is wrong
var X = 1
`)
	if len(malformed) != 1 || !strings.Contains(malformed[0].Message, `unknown analyzer "nosuch"`) {
		t.Fatalf("want one unknown-analyzer diagnostic, got %v", malformed)
	}
}

func TestSuppressionUnrelatedCommentIgnored(t *testing.T) {
	bySite, malformed := parseSuppressionSrc(t, `package p

//dancevet:ignorenospace is not a directive
var X = 1
`)
	if len(malformed) != 0 || len(bySite) != 0 {
		t.Fatalf("near-miss comment must be ignored, got %v / %v", bySite, malformed)
	}
}
