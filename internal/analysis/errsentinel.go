package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Errsentinel enforces wrap-safe error handling. The repo's sentinels —
// marketplace.ErrUnknownDataset, marketplace.ErrBadRate,
// search.ErrInfeasible — travel through fmt.Errorf("...: %w", err) wrapping,
// HTTP round trips that reconstruct them, and the danced service layer. An
// == / != comparison sees only the outermost wrapper and silently stops
// matching the moment anyone adds context to the chain; errors.Is is the
// contract. The same applies to any exported ErrXxx package-level variable,
// stdlib included.
//
// Matching on err.Error() text with strings.Contains/HasPrefix/HasSuffix is
// the same bug in worse clothes — messages are not API — and is flagged in
// non-test code (tests may assert on rendered messages).
var Errsentinel = &Analyzer{
	Name: "errsentinel",
	Doc: "flags ==/!= comparisons against ErrXxx sentinel variables (use " +
		"errors.Is) and strings.Contains-style matching on err.Error() text",
	Run: runErrsentinel,
}

func runErrsentinel(pass *Pass) error {
	for _, file := range pass.Files {
		testFile := pass.IsTestFile(file.Pos())
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					checkSentinelCompare(pass, n)
				}
			case *ast.CallExpr:
				if !testFile {
					checkErrorTextMatch(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

func checkSentinelCompare(pass *Pass, cmp *ast.BinaryExpr) {
	for _, side := range []ast.Expr{cmp.X, cmp.Y} {
		v := sentinelVar(pass, side)
		if v == nil {
			continue
		}
		name := v.Name()
		if v.Pkg() != nil && v.Pkg() != pass.Pkg {
			name = v.Pkg().Name() + "." + name
		}
		op := "=="
		repl := "errors.Is(err, " + name + ")"
		if cmp.Op == token.NEQ {
			op = "!="
			repl = "!" + repl
		}
		pass.Reportf(cmp.Pos(),
			"%s %s compared with %s: the comparison breaks as soon as the error is "+
				"wrapped (the marketplace client and danced layers wrap); use %s",
			name, op, op, repl)
		return
	}
}

// sentinelVar resolves e to an exported package-level error variable whose
// name matches ErrXxx, or nil.
func sentinelVar(pass *Pass, e ast.Expr) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = pass.ObjectOf(e)
	case *ast.SelectorExpr:
		obj = pass.ObjectOf(e.Sel)
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || !v.Exported() || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // not package-level
	}
	if !strings.HasPrefix(v.Name(), "Err") || len(v.Name()) < 4 {
		return nil
	}
	if c := v.Name()[3]; c < 'A' || c > 'Z' {
		return nil // ErrX convention: "Err" + exported-style suffix
	}
	if !implementsError(v.Type()) {
		return nil
	}
	return v
}

func implementsError(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}

// checkErrorTextMatch flags strings.Contains/HasPrefix/HasSuffix/Index
// calls fed by err.Error().
func checkErrorTextMatch(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "strings" {
		return
	}
	switch f.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "Index", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrErrorCall(pass, arg) {
			pass.Reportf(call.Pos(),
				"strings.%s on err.Error() matches rendered text, which is not API and "+
					"changes under wrapping; export a sentinel and use errors.Is "+
					"(or errors.As for typed errors)", f.Name())
			return
		}
	}
}

func isErrErrorCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	t := pass.TypeOf(sel.X)
	return t != nil && implementsError(t)
}
