// Package analysis is dancevet's static-analysis framework: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// surface the repo would use if the module took external dependencies.
//
// Each Analyzer encodes one invariant DANCE has already paid for in
// debugging time (see DESIGN.md "Invariants & static analysis"): map-order
// float accumulation broke Correlation's determinism (PR 1), unsynchronized
// maps raced under the parallel engine (PR 1/2), caches keyed by
// printable-separator string concatenation aliased hostile dataset names
// (PR 4), context-free call paths hung forever against slow marketplaces
// (PR 2), and sentinel errors compared with == broke once wrapping was
// introduced (PR 4). cmd/dancevet runs the suite over ./... in CI.
//
// Intentional exceptions are suppressed in source with
//
//	//dancevet:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or on its own line directly above. The reason is
// mandatory: a suppression without one is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one invariant checker. Run inspects a fully type-checked
// package through the Pass and reports diagnostics; it must not mutate
// shared state, so one Analyzer value can check packages concurrently.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression comments.
	Name string
	// Doc is a one-paragraph description, shown by `dancevet -list`.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package's source directory on disk ("" when unknown).
	// wirecompat anchors its golden-schema lookup here.
	Dir string

	diagnostics  []Diagnostic
	flow         *Flow
	suppressions map[string][]*suppression
}

// Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diagnostics = append(p.diagnostics, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// SuppressedAt reports whether a dancevet:ignore directive for analyzer
// covers pos's line. Flow-following analyzers use it to honor a suppression
// placed at a join's *origin*: without it, every sink the flow layer
// resolves through a suppressed helper would re-surface the same join,
// forcing a directive per call site instead of one at the join itself.
func (p *Pass) SuppressedAt(analyzer string, pos token.Pos) bool {
	if p.suppressions == nil {
		p.suppressions, _ = parseSuppressions(p.Fset, p.Files)
	}
	return suppressed(p.suppressions, analyzer, p.Fset.Position(pos))
}

// IsTestFile reports whether pos lies in a _test.go file. Several analyzers
// relax their rules there: tests may build throwaway contexts and assert on
// error text.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return p.TypesInfo.Uses[id]
}

// All returns every analyzer in the dancevet suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detfloat, Ctxflow, Lockguard, Lockorder, Cachekey, Errsentinel, Wirecompat}
}

// ByName resolves an analyzer name, for suppression validation and -run
// filters.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// calleeFunc resolves the static *types.Func a call dispatches to, or nil
// for calls through function values, type conversions and built-ins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether f is the package-level function pkgPath.name
// (not a method).
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	if f == nil || f.Pkg() == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// lastSegment returns the final slash-separated segment of an import path.
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// pathHasSegment reports whether the import path contains seg as a whole
// path segment (so "internal" matches "a/internal/b" but not "ainternal").
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
