package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// This file is dancevet's dataflow layer: an SSA-lite per-function IR
// (straight-line value numbering with conservative branch merging — every
// local gets one merged value, chosen by a worst-case score, instead of a
// full SSA construction) plus intraprocedural summaries composed over the
// static call graph. Analyzers reach it through Pass.Flow().
//
// The representation is the flattened string composition []Op: a value is a
// sequence of constant separators and dynamic (possibly adversary-
// controlled) operands. Flatten resolves identifiers through local
// assignments and calls through callee summaries, so
//
//	func compose(a, b string) string { return a + "|" + b }
//	k := compose(name, attr)
//
// flattens k to [dynamic(name), "|", dynamic(attr)] — the cross-function
// flow cachekey v1 could not see. Operands carry taint provenance when they
// originate from a known attacker-controlled source (marketplace/workload
// listing names, HTTP request fields) and a Via label naming the helper the
// flow passed through.
//
// The merge rule is deliberately "may", not "must": when two branches (or
// two assignments, or two return statements) disagree, the layer keeps the
// more dangerous composition. A linter that under-reports on merge would
// let exactly the laundered flows this layer exists for slip through.

// Op is one element of a value's flattened string composition.
type Op struct {
	// Sep is constant text (separator material); meaningful when !Dynamic.
	// Empty-Sep non-dynamic ops are boundaries whose rendered text an
	// adversary cannot control (numbers, quoted strings).
	Sep string
	// Dynamic marks a non-constant string whose content an adversary may
	// control.
	Dynamic bool
	// Param, when ≥ 0, marks the operand as the enclosing function's
	// parameter #Param verbatim — the hook summary substitution uses.
	Param int
	// Taint names the attacker-controlled source the operand derives from
	// ("" when unknown).
	Taint string
	// Via names the helper function the operand flowed through ("" for
	// direct flows).
	Via string
	// Pos locates the operand's origin.
	Pos token.Pos
}

// flowDef is one recorded assignment to a local variable: either a plain
// RHS expression or result #index of a multi-value call.
type flowDef struct {
	rhs   ast.Expr
	call  *ast.CallExpr
	index int
}

const (
	flowUnseen = iota
	flowInProgress
	flowDone
)

// maxFlowDepth bounds summary expansion through helper chains.
const maxFlowDepth = 6

// maxFlowDefs caps how many assignments to one variable the layer merges
// before declaring the value opaque.
const maxFlowDefs = 8

// Flow is the package-level dataflow index. Build it once per Pass via
// Pass.Flow(); all lookups are memoized.
type Flow struct {
	pass *Pass

	// decls maps every function with a body in the package to its decl.
	decls map[*types.Func]*ast.FuncDecl
	// paramOf maps parameter objects to their index in their function.
	paramOf map[types.Object]int
	// assigns records every assignment to a local variable.
	assigns map[types.Object][]flowDef

	values     map[types.Object][]Op
	valueState map[types.Object]int

	summaries    map[*types.Func][][]Op
	summaryState map[*types.Func]int
}

// Flow returns the pass's dataflow layer, building it on first use.
func (p *Pass) Flow() *Flow {
	if p.flow == nil {
		p.flow = newFlow(p)
	}
	return p.flow
}

func newFlow(p *Pass) *Flow {
	fl := &Flow{
		pass:         p,
		decls:        make(map[*types.Func]*ast.FuncDecl),
		paramOf:      make(map[types.Object]int),
		assigns:      make(map[types.Object][]flowDef),
		values:       make(map[types.Object][]Op),
		valueState:   make(map[types.Object]int),
		summaries:    make(map[*types.Func][][]Op),
		summaryState: make(map[*types.Func]int),
	}
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			f, ok := p.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fl.decls[f] = fd
			sig := f.Type().(*types.Signature)
			fl.indexParams(fd.Type.Params, sig)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if sig, ok := p.TypeOf(n.Type).(*types.Signature); ok {
					fl.indexParams(n.Type.Params, sig)
				}
			case *ast.AssignStmt:
				fl.recordAssign(n)
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						fl.record(name, flowDef{rhs: n.Values[i]})
					}
				}
			}
			return true
		})
	}
	return fl
}

func (fl *Flow) indexParams(fields *ast.FieldList, sig *types.Signature) {
	if fields == nil {
		return
	}
	i := 0
	for _, field := range fields.List {
		for _, name := range field.Names {
			if obj := fl.pass.TypesInfo.Defs[name]; obj != nil {
				fl.paramOf[obj] = i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	_ = sig
}

func (fl *Flow) recordAssign(as *ast.AssignStmt) {
	switch {
	case len(as.Lhs) == len(as.Rhs):
		for i, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				fl.record(id, flowDef{rhs: as.Rhs[i]})
			}
		}
	case len(as.Rhs) == 1:
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				fl.record(id, flowDef{call: call, index: i})
			}
		}
	}
}

func (fl *Flow) record(id *ast.Ident, def flowDef) {
	obj := fl.pass.ObjectOf(id)
	if obj == nil {
		return
	}
	if v, ok := obj.(*types.Var); !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return // only locals: package-level vars stay opaque
	}
	fl.assigns[obj] = append(fl.assigns[obj], def)
}

// Flatten reduces e to its flattened string composition, resolving local
// variables through their recorded assignments and helper calls through
// their summaries.
func (fl *Flow) Flatten(e ast.Expr) []Op {
	return fl.flatten(e, 0)
}

func (fl *Flow) flatten(e ast.Expr, depth int) []Op {
	e = ast.Unparen(e)
	pass := fl.pass
	// Constant folding first: a constant of any shape is separator text.
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		if tv.Value.Kind() == constant.String {
			return []Op{{Sep: constant.StringVal(tv.Value), Pos: e.Pos()}}
		}
	}
	if depth > maxFlowDepth {
		return fl.dynamicIfString(e, nil)
	}
	switch ex := e.(type) {
	case *ast.BinaryExpr:
		if t := pass.TypeOf(ex); t != nil && ex.Op == token.ADD {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				ops := fl.flatten(ex.X, depth)
				return append(ops, fl.flatten(ex.Y, depth)...)
			}
		}
	case *ast.CallExpr:
		return fl.flattenCall(ex, depth)
	case *ast.Ident:
		return fl.flattenIdent(ex, depth)
	case *ast.SelectorExpr:
		if taint := fl.taintOfSelector(ex); taint != "" {
			return []Op{{Dynamic: true, Param: -1, Taint: taint, Pos: ex.Pos()}}
		}
	}
	return fl.dynamicIfString(e, nil)
}

func (fl *Flow) flattenIdent(id *ast.Ident, depth int) []Op {
	obj := fl.pass.ObjectOf(id)
	if obj == nil {
		return fl.dynamicIfString(id, nil)
	}
	if i, ok := fl.paramOf[obj]; ok {
		op := Op{Dynamic: true, Param: i, Pos: id.Pos()}
		if fl.isStringish(obj.Type()) {
			return []Op{op}
		}
		return nil
	}
	if _, ok := fl.assigns[obj]; ok {
		return fl.valueOf(obj, depth)
	}
	return fl.dynamicIfString(id, nil)
}

// valueOf returns the merged composition of every assignment to obj.
func (fl *Flow) valueOf(obj types.Object, depth int) []Op {
	if ops, ok := fl.values[obj]; ok {
		return cloneOps(ops)
	}
	if fl.valueState[obj] == flowInProgress {
		// Cycle (x = x + s in a loop): opaque dynamic.
		return []Op{{Dynamic: true, Param: -1, Pos: obj.Pos()}}
	}
	fl.valueState[obj] = flowInProgress
	defs := fl.assigns[obj]
	var merged []Op
	if len(defs) > maxFlowDefs {
		merged = []Op{{Dynamic: true, Param: -1, Pos: obj.Pos()}}
	} else {
		for _, def := range defs {
			var ops []Op
			if def.rhs != nil {
				ops = fl.flatten(def.rhs, depth+1)
			} else {
				ops = fl.flattenTupleResult(def.call, def.index, depth+1)
			}
			merged = mergeOps(merged, ops)
		}
	}
	fl.valueState[obj] = flowDone
	fl.values[obj] = merged
	return cloneOps(merged)
}

func (fl *Flow) flattenCall(call *ast.CallExpr, depth int) []Op {
	pass := fl.pass
	f := calleeFunc(pass.TypesInfo, call)
	switch {
	case isPkgFunc(f, "strings", "Join") && len(call.Args) == 2:
		// elems joined by a constant separator: the elems are dynamic; a
		// printable separator between dynamic elements is the bug. Model as
		// dynamic·sep·dynamic.
		if sep, ok := fl.constString(call.Args[1]); ok {
			ops := []Op{{Dynamic: true, Param: -1, Pos: call.Pos()}}
			if sep != "" {
				ops = append(ops, Op{Sep: sep, Pos: call.Pos()})
			}
			return append(ops, Op{Dynamic: true, Param: -1, Pos: call.Pos()})
		}
	case isPkgFunc(f, "fmt", "Sprintf"):
		return fl.flattenSprintf(call, depth)
	case f != nil && f.Pkg() != nil && lastSegment(f.Pkg().Path()) == "safekey":
		// safekey.Join output is injective: a single opaque dynamic operand
		// (joining *it* with printable separators is still flagged — the
		// outer join can alias).
		return []Op{{Dynamic: true, Param: -1, Pos: call.Pos()}}
	case f != nil && numericSafeCall(f):
		// Numbers cannot contain separators; quoted strings escape them.
		return []Op{{Sep: "", Pos: call.Pos()}}
	}
	if taint := fl.taintOfCall(call); taint != "" {
		return []Op{{Dynamic: true, Param: -1, Taint: taint, Pos: call.Pos()}}
	}
	if f != nil {
		if ops := fl.expandSummary(f, call, 0, depth); ops != nil {
			return ops
		}
	}
	return fl.dynamicIfString(call, nil)
}

// flattenTupleResult resolves result #index of a multi-value call.
func (fl *Flow) flattenTupleResult(call *ast.CallExpr, index, depth int) []Op {
	if f := calleeFunc(fl.pass.TypesInfo, call); f != nil {
		if ops := fl.expandSummary(f, call, index, depth); ops != nil {
			return ops
		}
	}
	sig, ok := fl.pass.TypeOf(call.Fun).(*types.Signature)
	if ok && index < sig.Results().Len() && fl.isStringish(sig.Results().At(index).Type()) {
		return []Op{{Dynamic: true, Param: -1, Pos: call.Pos()}}
	}
	return nil
}

// expandSummary substitutes the call's arguments into the callee's summary
// for result #index. Returns nil when no summary applies (no body in this
// package, opaque result, argument shape mismatch).
func (fl *Flow) expandSummary(f *types.Func, call *ast.CallExpr, index, depth int) []Op {
	if depth >= maxFlowDepth {
		return nil
	}
	results := fl.summaryOf(f, depth)
	if index >= len(results) || results[index] == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return nil
	}
	// Calling a variadic function, or f(args...) spreading: parameter
	// positions stop lining up with argument positions — stay opaque for
	// any op that refers to a parameter at or past the variadic slot.
	variadicAt := -1
	if sig.Variadic() {
		variadicAt = sig.Params().Len() - 1
	}
	var out []Op
	for _, op := range results[index] {
		// Only dynamic ops can be parameter references: constant separators
		// carry the Param zero value.
		if op.Dynamic && op.Param >= 0 {
			if op.Param < len(call.Args) && (variadicAt < 0 || op.Param < variadicAt) && call.Ellipsis == token.NoPos {
				out = append(out, fl.flatten(call.Args[op.Param], depth+1)...)
			} else {
				out = append(out, Op{Dynamic: true, Param: -1, Pos: call.Pos()})
			}
			continue
		}
		op.Param = -1
		op.Via = f.Name()
		out = append(out, op)
	}
	if out == nil {
		out = []Op{} // non-nil: an empty composition is a summary, not a miss
	}
	return out
}

// summaryOf computes f's per-result string compositions from its return
// statements (closures excluded — their returns are not f's). A nil entry
// means that result is opaque.
func (fl *Flow) summaryOf(f *types.Func, depth int) [][]Op {
	if s, ok := fl.summaries[f]; ok {
		return s
	}
	if fl.summaryState[f] == flowInProgress {
		return nil // recursion: opaque
	}
	fd, ok := fl.decls[f]
	if !ok {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil
	}
	fl.summaryState[f] = flowInProgress
	results := make([][]Op, sig.Results().Len())
	merge := func(i int, ops []Op) {
		if !fl.isStringish(sig.Results().At(i).Type()) {
			return
		}
		if results[i] == nil {
			results[i] = ops
			return
		}
		results[i] = mergeOps(results[i], ops)
	}
	for _, ret := range returnsOf(fd) {
		switch {
		case len(ret.Results) == sig.Results().Len():
			for i, r := range ret.Results {
				merge(i, fl.flatten(r, depth+1))
			}
		case len(ret.Results) == 0:
			// Bare return with named results: each result variable's merged
			// assignments are its value.
			fl.mergeNamedResults(fd, sig, merge, depth)
		default:
			// return f() forwarding a tuple: opaque.
		}
	}
	fl.summaryState[f] = flowDone
	fl.summaries[f] = results
	return results
}

func (fl *Flow) mergeNamedResults(fd *ast.FuncDecl, sig *types.Signature, merge func(int, []Op), depth int) {
	if fd.Type.Results == nil {
		return
	}
	i := 0
	for _, field := range fd.Type.Results.List {
		for _, name := range field.Names {
			if obj := fl.pass.TypesInfo.Defs[name]; obj != nil {
				if _, assigned := fl.assigns[obj]; assigned {
					merge(i, fl.valueOf(obj, depth+1))
				}
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
}

// returnsOf collects fd's own return statements, skipping closure bodies.
func returnsOf(fd *ast.FuncDecl) []*ast.ReturnStmt {
	var rets []*ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			rets = append(rets, n)
		}
		return true
	})
	return rets
}

// flattenSprintf models a Sprintf call: literal format chunks are
// separators; %s/%v verbs recurse into their arguments (so helper results
// and locals resolve); numeric and %q/%x verbs are safe boundaries.
func (fl *Flow) flattenSprintf(call *ast.CallExpr, depth int) []Op {
	if len(call.Args) == 0 {
		return fl.dynamicIfString(call, nil)
	}
	format, ok := fl.constString(call.Args[0])
	if !ok {
		return []Op{{Dynamic: true, Param: -1, Pos: call.Pos()}}
	}
	var ops []Op
	argIdx := 1
	lit := strings.Builder{}
	flushLit := func() {
		if lit.Len() > 0 {
			ops = append(ops, Op{Sep: lit.String(), Pos: call.Pos()})
			lit.Reset()
		}
	}
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			lit.WriteByte(format[i])
			continue
		}
		i++
		for i < len(format) && strings.ContainsRune("+-# 0123456789.*", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		if verb == '%' {
			lit.WriteByte('%')
			continue
		}
		dynamic := false
		if (verb == 's' || verb == 'v') && argIdx < len(call.Args) {
			if t := fl.pass.TypeOf(call.Args[argIdx]); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok {
					dynamic = b.Info()&types.IsString != 0
				} else {
					dynamic = true // Stringers render arbitrary text
				}
			}
		}
		flushLit()
		if dynamic {
			ops = append(ops, fl.flatten(call.Args[argIdx], depth+1)...)
		} else if verb != '%' {
			// Rendered text an adversary cannot shape: a boundary.
			ops = append(ops, Op{Sep: "", Pos: call.Pos()})
		}
		argIdx++
	}
	flushLit()
	return ops
}

// taintOfSelector classifies field reads that yield attacker-controlled
// names: dataset/listing identity fields of the marketplace and workload
// packages are seller-supplied free text.
func (fl *Flow) taintOfSelector(sel *ast.SelectorExpr) string {
	selection, ok := fl.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return ""
	}
	obj := selection.Obj()
	if obj.Pkg() == nil || !fl.isStringish(obj.Type()) {
		return ""
	}
	pkg := lastSegment(obj.Pkg().Path())
	if pkg != "marketplace" && pkg != "workload" {
		return ""
	}
	switch obj.Name() {
	case "Name", "Instance", "Dataset":
		owner := namedRecv(selection.Recv())
		if owner == "" {
			owner = pkg
		}
		return "a marketplace listing name (" + owner + "." + obj.Name() + ")"
	}
	return ""
}

// taintOfCall classifies calls that yield shopper-controlled request text:
// the *http.Request accessors danced and marketd read names out of.
func (fl *Flow) taintOfCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	f, _ := fl.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	switch f.Pkg().Path() {
	case "net/http":
		switch f.Name() {
		case "FormValue", "PostFormValue", "PathValue":
			return "an HTTP request field (http.Request." + f.Name() + ")"
		}
	case "net/url":
		if f.Name() == "Get" || f.Name() == "Query" {
			return "an HTTP request field (url query)"
		}
	case "net/textproto", "net/http/httputil":
	}
	if f.Name() == "Get" && f.Pkg().Path() == "net/http" {
		return "an HTTP request field (header)"
	}
	return ""
}

func namedRecv(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func (fl *Flow) dynamicIfString(e ast.Expr, taintless []Op) []Op {
	if t := fl.pass.TypeOf(e); t != nil && fl.isStringish(t) {
		return []Op{{Dynamic: true, Param: -1, Pos: e.Pos()}}
	}
	return taintless
}

func (fl *Flow) isStringish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (fl *Flow) constString(e ast.Expr) (string, bool) {
	tv, ok := fl.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func cloneOps(ops []Op) []Op {
	return append([]Op(nil), ops...)
}

// mergeOps keeps the more dangerous of two compositions (branch-merge /
// multiple-assignment rule): printable-join beats multi-dynamic beats
// dynamic beats constant.
func mergeOps(a, b []Op) []Op {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if opsScore(b) > opsScore(a) {
		return b
	}
	return a
}

// opsScore ranks a composition by how much a cachekey-style analyzer cares
// about it.
func opsScore(ops []Op) int {
	dynamics := 0
	if _, joined := printableJoin(ops); joined {
		return 3
	}
	for _, op := range ops {
		if op.Dynamic {
			dynamics++
		}
	}
	if dynamics >= 2 {
		return 2
	}
	if dynamics == 1 {
		return 1
	}
	return 0
}

// printableJoin scans the composition for two dynamic operands whose
// intervening constant text is non-empty and entirely printable, returning
// that separator.
func printableJoin(ops []Op) (sep string, found bool) {
	seenDynamic := false
	cur := ""
	for _, op := range ops {
		if !op.Dynamic {
			if seenDynamic {
				cur += op.Sep
			}
			continue
		}
		if seenDynamic && cur != "" && printable(cur) {
			return cur, true
		}
		seenDynamic = true
		cur = ""
	}
	return "", false
}

// CalleesOf returns the static same-package callees of fd's body, in source
// order, excluding calls inside `go` statements (they run on another
// goroutine) and closure bodies spawned by them. Used by lockorder's
// summary expansion.
func (fl *Flow) CalleesOf(fd *ast.FuncDecl) []*types.Func {
	var out []*types.Func
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if f := calleeFunc(fl.pass.TypesInfo, n); f != nil {
					if _, ok := fl.decls[f]; ok {
						out = append(out, f)
					}
				}
			}
			return true
		})
	}
	walk(fd.Body)
	return out
}

// DeclOf returns the package-local declaration of f, or nil.
func (fl *Flow) DeclOf(f *types.Func) *ast.FuncDecl { return fl.decls[f] }
