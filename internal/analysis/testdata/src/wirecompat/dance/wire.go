// Package dance is a dancevet fixture for wirecompat: its package name puts
// it in the v1 wire-contract set, and the sibling v1.schema.json golden
// declares the frozen surface. The golden pins fields "rate" (Go name Rate)
// and "seed"; this source renamed Rate's tag to "rate_limit" and dropped
// Seed entirely — both breaking, both reported on the type declaration.
package dance

type AcquireRequest struct { // want `v1 field "rate" of dance.AcquireRequest was renamed to "rate_limit" on the wire` `v1 field "seed" of dance.AcquireRequest was removed from the wire`
	Instance string  `json:"instance"`
	Rate     float64 `json:"rate_limit"`
}

// Quote matches the golden exactly — no finding.
type Quote struct {
	Price float64 `json:"price"`
	Note  string  `json:"note,omitempty"`
}
