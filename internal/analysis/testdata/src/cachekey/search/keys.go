// Package search is a dancevet fixture for cachekey: its final path
// segment puts it in the cache-key-sensitive set. The positive cases
// reproduce PR 4's JICache aliasing bug — printable separators between
// marketplace-controlled names.
package search

import (
	"fmt"
	"strconv"
	"strings"
)

type cache struct{ m map[string]float64 }

func (c *cache) get(key string) (float64, bool) {
	v, ok := c.m[key]
	return v, ok
}

// pairKeyBad is the seeded PR 4 reproduction: "a|b"+"|"+"c" and
// "a"+"|"+"b|c" collide.
func pairKeyBad(a, b string) string {
	return a + "|" + b // want "printable separator"
}

func attrsKeyBad(attrs []string) string {
	return strings.Join(attrs, "/") // want "printable separator"
}

func sprintfKeyBad(name, attr string) string {
	return fmt.Sprintf("%s:%s", name, attr) // want "printable separator"
}

// The repo convention: non-printable separators cannot appear in names.
func pairKeyGood(a, b string) string {
	return a + "\x01" + b
}

func attrsKeyGood(attrs []string) string {
	return strings.Join(attrs, "\x00")
}

// A numeric suffix cannot smuggle a separator byte.
func versionKeyGood(name string, v uint64) string {
	return name + "@" + strconv.FormatUint(v, 10)
}

func lookup(c *cache, name, attr string) (float64, bool) {
	return c.get(name + ":" + attr) // want "printable separator"
}

func assigned(c *cache, name, attr string) float64 {
	cacheKey := name + "|" + attr // want "printable separator"
	v, _ := c.get(cacheKey)       // want "printable separator"
	return v
}

// Joining for human-readable output is fine outside key contexts.
func describe(a, b string) string {
	return a + ", " + b
}

func legacyKey(a, b string) string {
	//dancevet:ignore cachekey names are validated to [a-z0-9_]+ upstream
	return a + "|" + b
}
