// Package offline is a dancevet fixture for cachekey v2's interprocedural
// flows: joins laundered through same-package helpers and local variables,
// map-index sinks, and taint provenance from marketplace listing names and
// HTTP request fields. v1 (AST-local, key-shaped sites only) saw none of
// the positive cases below.
package offline

import (
	"net/http"
	"strconv"

	"cachekey/flow/marketplace"
)

var cache = map[string]float64{}

// compose is not key-shaped, so v1 never looked inside it; v2 summarizes it
// as param·"|"·param and substitutes call arguments.
func compose(a, b string) string {
	return a + "|" + b
}

// composeSafe uses the repo's non-printable separator convention.
func composeSafe(a, b string) string {
	return a + "\x00" + b
}

// launderedHelper: the join happens inside compose; the key-shaped
// assignment and the map index both see only a call and an identifier.
func launderedHelper(name, attr string) float64 {
	key := compose(name, attr) // want `printable separator "\|".*\(flows through compose\)`
	return cache[key]          // want `printable separator "\|".*\(flows through compose\)`
}

// launderedLocal: the join is bound to an innocently named local first; the
// key-shaped assignment's RHS is a bare identifier v1 could not see through.
func launderedLocal(name, attr string) float64 {
	k := name + ":" + attr
	key := k          // want `printable separator ":"`
	return cache[key] // want `printable separator ":"`
}

// formKey: the left operand is shopper-controlled request text; the report
// names the source.
func formKey(r *http.Request, attr string) float64 {
	key := r.FormValue("dataset") + "/" + attr // want `printable separator "/".*operand is an HTTP request field \(http\.Request\.FormValue\)`
	return cache[key]                          // want `operand is an HTTP request field`
}

// listingKey: the left operand is a seller-controlled listing name.
func listingKey(info marketplace.DatasetInfo, attr string) float64 {
	key := info.Name + "|" + attr // want `printable separator "\|".*operand is a marketplace listing name \(DatasetInfo\.Name\)`
	return cache[key]             // want `operand is a marketplace listing name`
}

// safeKeyed stays quiet: the helper joins with \x00, the section separator
// is \x01, and the numeric suffix cannot smuggle a separator byte.
func safeKeyed(name, attr string, v uint64) float64 {
	key := composeSafe(name, attr) + "\x01" + strconv.FormatUint(v, 10)
	return cache[key]
}
