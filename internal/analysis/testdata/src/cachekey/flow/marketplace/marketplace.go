// Package marketplace is a taint-source stand-in for cachekey v2 fixtures:
// its final path segment matches the real marketplace package, so Name
// fields read from it carry listing-name taint.
package marketplace

// DatasetInfo mirrors the real free catalog record: Name is seller-supplied
// free text.
type DatasetInfo struct {
	Name string
	Rows int
}
