// Package web is outside the cache-key-sensitive set: display strings may
// join names however they like.
package web

import "fmt"

func titleKey(section, page string) string {
	return fmt.Sprintf("%s / %s", section, page)
}
