// Package ab is a dancevet fixture for lockorder: a two-lock inversion
// closed through a helper call (reported with both witness chains), a
// violated `lockorder: leaf` annotation, a declared order contradicted by
// the inferred edge, and the negative shapes (same lock class, go-spawned
// goroutines).
package ab

import "sync"

// Server's two mutexes are acquired in opposite orders by X and Y — the
// classic inversion. Y's second acquisition hides inside a helper, so only
// the transitive call summary sees it.
type Server struct {
	a sync.Mutex
	b sync.Mutex
}

func (s *Server) X() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock() // want `lock-order cycle ab.Server.a → ab.Server.b → ab.Server.a: .*X acquires ab.Server.b .* while holding ab.Server.a .*; Y holds ab.Server.b .* and calls lockA, which acquires ab.Server.a`
	defer s.b.Unlock()
}

func (s *Server) lockA() {
	s.a.Lock()
	s.a.Unlock()
}

func (s *Server) Y() {
	s.b.Lock()
	defer s.b.Unlock()
	s.lockA()
}

// Leafy asserts terminality and violates it.
type Leafy struct {
	m    sync.Mutex // lockorder: leaf
	next sync.Mutex
}

func (l *Leafy) violate() {
	l.m.Lock()
	l.next.Lock() // want `ab.Leafy.m is annotated .lockorder: leaf. .* but the graph has ab.Leafy.m → ab.Leafy.next: violate acquires ab.Leafy.next .* while holding ab.Leafy.m`
	l.next.Unlock()
	l.m.Unlock()
}

// Declared's intended order is written on the field; backwards infers the
// opposite edge, closing a cycle before a second inverted site exists.
type Declared struct {
	// lockorder: before second
	first  sync.Mutex // want `lock-order cycle ab.Declared.first → ab.Declared.second → ab.Declared.first: .*declared .lockorder: before second. .*; backwards acquires ab.Declared.first .* while holding ab.Declared.second`
	second sync.Mutex
}

func (d *Declared) backwards() {
	d.second.Lock()
	d.first.Lock()
	d.first.Unlock()
	d.second.Unlock()
}

// Annotations on non-mutex fields are themselves diagnosed.
type Mislabeled struct {
	name string // lockorder: leaf // want `lockorder annotation on Mislabeled.name, which is not a sync.Mutex/RWMutex field`
}

// G: goroutines do not inherit the spawner's critical section — spawn adds
// no front→back edge, so inverted's back→front edge closes no cycle.
type G struct {
	front sync.Mutex
	back  sync.Mutex
}

func (g *G) spawn() {
	g.front.Lock()
	go func() {
		g.back.Lock()
		g.back.Unlock()
	}()
	g.front.Unlock()
}

func (g *G) inverted() {
	g.back.Lock()
	g.front.Lock()
	g.front.Unlock()
	g.back.Unlock()
}

// Two instances of one lock class share an identity; ordering them is a
// runtime (address-order) discipline, not a static edge.
func pair(x, y *G) {
	x.back.Lock()
	y.back.Lock()
	y.back.Unlock()
	x.back.Unlock()
}
