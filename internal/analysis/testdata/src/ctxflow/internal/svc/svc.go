// Package svc is a dancevet fixture for ctxflow: an internal/ package whose
// exported API must thread context. The positive cases reproduce the
// pre-PR-2 hang class (work driven by a context the caller cannot cancel).
package svc

import "context"

type Market struct{}

func (m *Market) Catalog(ctx context.Context) error { return nil }

var pkgCtx = context.Background() // want "context root outside package main"

// Fetch is the seeded reproduction of the pre-refactor experiments pattern:
// an exported entry point running on a package-level context.
func Fetch(m *Market) error { // want "calls m.Catalog with a context the caller never provided"
	return m.Catalog(pkgCtx)
}

func FetchTODO(m *Market) error { // want "calls m.Catalog with a context the caller never provided"
	return m.Catalog(context.TODO()) // want "context root outside package main"
}

type client struct {
	ctx context.Context
	m   *Market
}

// Stored reproduces the struct-field-context anti-pattern.
func (c *client) stored() error { return c.m.Catalog(c.ctx) }

type Client struct {
	ctx context.Context
	m   *Market
}

func (c *Client) Refresh() error { // want "calls c.m.Catalog with a context the caller never provided"
	return c.m.Catalog(c.ctx)
}

// FetchCtx threads ctx first: the convention dancevet enforces.
func FetchCtx(ctx context.Context, m *Market) error { return m.Catalog(ctx) }

func FetchCtxLast(m *Market, ctx context.Context) error { // want "not as its first parameter"
	return m.Catalog(ctx)
}

// Handler-style closures derive their context from an enclosing function
// literal parameter — caller-provided, so not flagged.
func Handler(m *Market) func(ctx context.Context) error {
	return func(ctx context.Context) error { return m.Catalog(ctx) }
}

// unexported helpers are package-internal; rule 1 does not apply.
func fetchQuiet(m *Market) error { return m.Catalog(pkgCtx) }

//dancevet:ignore ctxflow deprecated facade shim kept for v0 callers
func Legacy(m *Market) error { return m.Catalog(context.Background()) }
