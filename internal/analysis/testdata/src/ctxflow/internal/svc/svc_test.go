package svc

import (
	"context"
	"testing"
)

// Tests are context roots: Background here is fine, and exported test
// helpers are exempt from the ctx-first rule.
func TestFetch(t *testing.T) {
	m := &Market{}
	if err := m.Catalog(context.Background()); err != nil {
		t.Fatal(err)
	}
}
