// Package edge pins ctxflow's behavior on contexts that reach calls through
// closures, method values and go-literals — the shapes the background-worker
// waves (durable danced state, request coalescing) will write.
package edge

import "context"

// bgCtx is the pre-refactor experiments pattern: a package-level root.
var bgCtx = context.Background() // want `context.Background creates a context root`

// Client is an exported receiver so rule 1 applies to its callers.
type Client struct{}

// Fetch is ctx-first, as the v1 API convention requires.
func (Client) Fetch(ctx context.Context) error { return nil }

// ClosureCapture: the offending call sits inside a goroutine literal, but
// rule 1 inspects the exported function's whole body — the closure is not a
// boundary, and the function severing the cancellation chain is flagged.
func ClosureCapture(c Client) { // want `exported ClosureCapture calls c.Fetch with a context the caller never provided`
	go func() {
		_ = c.Fetch(bgCtx)
	}()
}

// MethodValue: binding the method does not hide its signature; the call
// through the bound value is still seen, named by the value it went through.
func MethodValue(c Client) { // want `exported MethodValue calls fetch with a context the caller never provided`
	fetch := c.Fetch
	_ = fetch(bgCtx)
}

// GoLiteralLocalRoot documents the analyzer's split verdict on a local
// context.Background inside a go-literal: rule 1 treats a locally declared
// ctx as caller-derived (it cannot distinguish one from a threaded-in
// context), so the exported function is not flagged — but rule 2 still
// flags the Background call itself, so the pattern cannot land silently.
func GoLiteralLocalRoot(c Client) {
	go func() {
		ctx := context.Background() // want `context.Background creates a context root`
		_ = c.Fetch(ctx)
	}()
}

// HandlerDerived: a ctx entering through the literal's own parameter is
// caller-provided; neither rule fires.
func HandlerDerived(c Client) {
	run := func(ctx context.Context) { _ = c.Fetch(ctx) }
	_ = run
}
