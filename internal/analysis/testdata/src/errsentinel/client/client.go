// Package client is a dancevet fixture for errsentinel: sentinel errors
// travel through %w wrapping and HTTP reconstruction, so == and rendered-
// text matching silently break.
package client

import (
	"errors"
	"strings"

	"errsentinel/sentinels"
)

var ErrUnknownDataset = errors.New("marketplace: unknown dataset")

// errInternal is unexported: package-local, never crosses a wrap boundary.
var errInternal = errors.New("internal")

func Classify(err error) int {
	if err == ErrUnknownDataset { // want "compared with =="
		return 404
	}
	if err != ErrUnknownDataset { // want "compared with !="
		return 0
	}
	if err == sentinels.ErrBadRate { // want `sentinels\.ErrBadRate == compared`
		return 400
	}
	if errors.Is(err, ErrUnknownDataset) {
		return 404
	}
	if err == errInternal {
		return 500
	}
	if err == nil {
		return 200
	}
	return 0
}

func Brittle(err error) bool {
	return strings.Contains(err.Error(), "unknown dataset") // want "matches rendered text"
}

func BrittlePrefix(err error) bool {
	return strings.HasPrefix(err.Error(), "marketplace:") // want "matches rendered text"
}

// Plain string matching is fine when no error is involved.
func Fine(s string) bool { return strings.Contains(s, "x") }

func Suppressed(err error) bool {
	//dancevet:ignore errsentinel golden-output test helper pins the rendered message
	return strings.Contains(err.Error(), "unknown dataset")
}
