package client

import (
	"errors"
	"strings"
	"testing"
)

// Tests may assert on rendered messages — the text-matching rule is
// test-exempt. The == rule is not: wrapping breaks it in tests too.
func TestRendered(t *testing.T) {
	err := errors.New("marketplace: unknown dataset")
	if !strings.Contains(err.Error(), "unknown dataset") {
		t.Fatal("message changed")
	}
	if err == ErrUnknownDataset { // want "compared with =="
		t.Fatal("distinct errors compared equal")
	}
}
