// Package sentinels exports sentinel errors for the errsentinel fixture's
// cross-package cases.
package sentinels

import "errors"

var ErrBadRate = errors.New("marketplace: bad rate")
