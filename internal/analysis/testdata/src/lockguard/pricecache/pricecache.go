// Package pricecache is a dancevet fixture for lockguard: the positive
// cases reproduce PR 1's unsynchronized price-memo map and PR 2's
// concurrent-Acquire race.
package pricecache

import "sync"

type Memo struct {
	mu sync.RWMutex
	// m memoizes Price() results. guarded by mu
	m map[string]float64

	total float64 // guarded by mu

	hits int // unannotated: lockguard leaves it alone
}

func (c *Memo) GetLocked(key string) (float64, bool) {
	c.mu.RLock()
	v, ok := c.m[key]
	c.mu.RUnlock()
	return v, ok
}

func (c *Memo) PutLocked(key string, v float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = v
	c.total += v
}

// GetRacy is the seeded reproduction of the PR 1 price-memo race.
func (c *Memo) GetRacy(key string) float64 {
	return c.m[key] // want `read of c\.m, guarded by mu, without holding it`
}

func (c *Memo) PutRacy(key string, v float64) {
	c.m[key] = v // want `write to c\.m, guarded by mu, without holding it exclusively`
}

// PutUnderRLock holds the wrong privilege: readers may run concurrently.
func (c *Memo) PutUnderRLock(key string, v float64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.m[key] = v // want `RLock is not enough for writes`
}

func (c *Memo) EarlyUnlockBranch(key string) float64 {
	c.mu.Lock()
	if key == "" {
		c.mu.Unlock()
		return 0
	}
	v := c.m[key]
	c.mu.Unlock()
	return v
}

func (c *Memo) AfterUnlock(key string) float64 {
	c.mu.Lock()
	c.mu.Unlock()
	return c.m[key] // want `read of c\.m, guarded by mu, without holding it`
}

// GoroutineRace: the closure runs after Unlock may already have happened —
// holding the lock at `go` time proves nothing.
func (c *Memo) GoroutineRace(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		_ = c.m[key] // want `read of c\.m, guarded by mu, without holding it`
	}()
}

// NewMemo touches c.m lock-free on a freshly constructed value, which is
// safe: no other goroutine can hold a reference yet.
func NewMemo() *Memo {
	c := &Memo{}
	c.m = make(map[string]float64)
	return c
}

func (c *Memo) Reset() {
	//dancevet:ignore lockguard caller holds mu across the whole rebuild
	c.m = nil
}

type shard struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type Sharded struct {
	shards [4]shard
}

func (s *Sharded) Bump(i int) {
	sh := &s.shards[i]
	sh.mu.Lock()
	sh.n++
	sh.mu.Unlock()
}

func (s *Sharded) BumpRacy(i int) {
	sh := &s.shards[i]
	sh.n++ // want `write to sh\.n, guarded by mu, without holding it exclusively`
}

// installLocked follows the runtime's xLocked idiom: the caller holds mu.
func (c *Memo) installLocked(key string, v float64) {
	c.m[key] = v
	c.total += v
}

func (c *Memo) Install(key string, v float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.installLocked(key, v)
}

// scratchPool reproduces the columnar gather-buffer pool shape: a
// hand-rolled free list guarded by a mutex, plus reuse statistics.
type scratchPool struct {
	mu   sync.Mutex
	free [][]float64 // guarded by mu
	hits int         // guarded by mu
}

func (p *scratchPool) Get(n int) []float64 {
	p.mu.Lock()
	if k := len(p.free); k > 0 {
		buf := p.free[k-1]
		p.free = p.free[:k-1]
		p.hits++
		p.mu.Unlock()
		return buf[:0]
	}
	p.mu.Unlock()
	return make([]float64, 0, n)
}

func (p *scratchPool) Put(buf []float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, buf)
}

// PutRacy is the pooled-buffer hazard: returning a buffer to the free list
// without the lock tears the slice header under concurrent Gets.
func (p *scratchPool) PutRacy(buf []float64) {
	p.free = append(p.free, buf) // want `write to p\.free, guarded by mu, without holding it exclusively` `read of p\.free, guarded by mu, without holding it`
}

func (p *scratchPool) HitsRacy() int {
	return p.hits // want `read of p\.hits, guarded by mu, without holding it`
}

// withScratch needs no annotations: sync.Pool synchronizes internally and
// the buffer is owned by exactly one goroutine between Get and Put.
var scratch = sync.Pool{New: func() any { return make([]float64, 0, 64) }}

func withScratch(n int, f func([]float64)) {
	buf := scratch.Get().([]float64)
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	f(buf[:n])
	scratch.Put(buf[:0])
}
