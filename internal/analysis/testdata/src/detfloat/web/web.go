// Package web is outside the determinism-critical set: the same patterns
// detfloat flags in infotheory/sampling/search/workload are allowed here.
package web

import (
	"math/rand"
	"time"
)

func jitter() time.Duration {
	return time.Duration(rand.Intn(50)) * time.Millisecond
}

func stamp() time.Time {
	return time.Now()
}

func meanByKey(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s / float64(len(m))
}
