// Package infotheory is a dancevet fixture: its final path segment puts it
// in the determinism-critical set. The positive cases re-introduce PR 1's
// map-order float-summation bug.
package infotheory

import (
	"math/rand"
	"time"
)

// conditionalTerm is the seeded reproduction of the PR 1 Correlation bug:
// per-group conditional-entropy terms summed in map-iteration order.
func conditionalTerm(groups map[string][]float64, total float64) float64 {
	hc := 0.0
	for _, rows := range groups {
		hc += float64(len(rows)) / total // want "floating-point accumulation"
	}
	return hc
}

func sumAssignForm(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s = s + v // want "floating-point accumulation"
	}
	return s
}

type agg struct{ total float64 }

func fieldAccum(a *agg, m map[int]float64) {
	for _, v := range m {
		a.total += v // want "floating-point accumulation"
	}
}

// loopLocal floats reset every iteration: nothing accumulates across the
// map's random order.
func loopLocal(m map[int][]float64) float64 {
	best := 0.0
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		if s > best {
			best = s
		}
	}
	return best
}

// Integer accumulation is order-independent.
func intAccum(m map[string][]float64) int {
	n := 0
	for _, rows := range m {
		n += len(rows)
	}
	return n
}

// Slices iterate deterministically.
func sliceSum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func globalRandInt() int {
	return rand.Intn(10) // want "process-global random source"
}

func globalShuffle(xs []float64) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "process-global random source"
}

func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func seededZipf(seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	return rand.NewZipf(rng, 1.2, 1, 100).Uint64()
}

func wallClock() time.Time {
	return time.Now() // want "time.Now in a determinism-critical package"
}

// Durations computed from a caller-provided instant are fine; only reading
// the wall clock is flagged.
func elapsed(t0, t1 time.Time) time.Duration {
	return t1.Sub(t0)
}

func suppressedAccum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		//dancevet:ignore detfloat demo of an explicitly accepted exception
		s += v
	}
	return s
}
