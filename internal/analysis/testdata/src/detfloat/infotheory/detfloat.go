// Package infotheory is a dancevet fixture: its final path segment puts it
// in the determinism-critical set. The positive cases re-introduce PR 1's
// map-order float-summation bug.
package infotheory

import (
	"math/rand"
	"time"
)

// conditionalTerm is the seeded reproduction of the PR 1 Correlation bug:
// per-group conditional-entropy terms summed in map-iteration order.
func conditionalTerm(groups map[string][]float64, total float64) float64 {
	hc := 0.0
	for _, rows := range groups {
		hc += float64(len(rows)) / total // want "floating-point accumulation"
	}
	return hc
}

func sumAssignForm(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s = s + v // want "floating-point accumulation"
	}
	return s
}

type agg struct{ total float64 }

func fieldAccum(a *agg, m map[int]float64) {
	for _, v := range m {
		a.total += v // want "floating-point accumulation"
	}
}

// loopLocal floats reset every iteration: nothing accumulates across the
// map's random order.
func loopLocal(m map[int][]float64) float64 {
	best := 0.0
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		if s > best {
			best = s
		}
	}
	return best
}

// Integer accumulation is order-independent.
func intAccum(m map[string][]float64) int {
	n := 0
	for _, rows := range m {
		n += len(rows)
	}
	return n
}

// Slices iterate deterministically.
func sliceSum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func globalRandInt() int {
	return rand.Intn(10) // want "process-global random source"
}

func globalShuffle(xs []float64) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "process-global random source"
}

func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func seededZipf(seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	return rand.NewZipf(rng, 1.2, 1, 100).Uint64()
}

func wallClock() time.Time {
	return time.Now() // want "time.Now in a determinism-critical package"
}

// Durations computed from a caller-provided instant are fine; only reading
// the wall clock is flagged.
func elapsed(t0, t1 time.Time) time.Duration {
	return t1.Sub(t0)
}

func suppressedAccum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		//dancevet:ignore detfloat demo of an explicitly accepted exception
		s += v
	}
	return s
}

// segmentSeed mirrors the search engine's per-(candidate, segment) RNG
// stream derivation: two composed splitmix-style mixes of the request seed.
// Every level is a pure function of (seed, cand, seg), so the derived
// streams are deterministic per seed and independent of worker count.
func segmentSeed(seed int64, cand, seg int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(cand+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) + 0x94d049bb133111eb*uint64(seg+1)
	return int64(z ^ (z >> 31))
}

// segmentStream is the accepted pattern: each segment constructs its own
// *Rand from a derived seed and accumulates in counted-loop order.
func segmentStream(seed int64, cand, seg, iters int) float64 {
	rng := rand.New(rand.NewSource(segmentSeed(seed, cand, seg)))
	s := 0.0
	for i := 0; i < iters; i++ {
		s += rng.Float64()
	}
	return s
}

// globalSeedDerivation defeats the point of stream derivation: the "seed"
// itself is drawn from the process-global source, so every run derives
// different streams even though the construction looks seeded.
func globalSeedDerivation() float64 {
	rng := rand.New(rand.NewSource(rand.Int63())) // want "process-global random source"
	return rng.Float64()
}

func globalProposalOrder(n int) []int {
	return rand.Perm(n) // want "process-global random source"
}
