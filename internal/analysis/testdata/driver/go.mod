module example.com/driver

go 1.22
