package search

import "testing"

// The test file makes `go list -test` emit a test-variant package, so the
// driver test covers the variant-dedup path in Load.
func TestPairKey(t *testing.T) {
	if PairKey("a", "b") != "a|b" {
		t.Fatal("unexpected key")
	}
}
