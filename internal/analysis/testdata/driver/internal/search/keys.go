// Package search is the end-to-end driver fixture: a real module loaded
// through `go list -export` and type-checked against compiler export data,
// exactly as cmd/dancevet does it.
package search

// PairKey carries the one seeded finding the driver test asserts on.
func PairKey(a, b string) string {
	return a + "|" + b
}

func sum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		//dancevet:ignore detfloat driver fixture exercises suppression end to end
		s += v
	}
	return s
}

var _ = sum
