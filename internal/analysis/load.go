package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("pkg [pkg.test]" for test variants).
	Path string
	// Dir is the package directory.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadConfig controls Load.
type LoadConfig struct {
	// Dir is the working directory for the go tool (the module root).
	// Empty means the current directory.
	Dir string
	// Tags is a comma-separated build-tag list forwarded to `go list`
	// (dancevet runs with "scenario" in CI so the scenario matrix is
	// analyzed too).
	Tags string
	// Tests includes each package's test variant — the variant's file set
	// is a superset of the plain package's, so when one exists only the
	// variant is analyzed.
	Tests bool
}

// listPackage mirrors the subset of `go list -json` dancevet consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load builds the transitive package graph with `go list -export`, parses
// the requested packages from source and type-checks them against their
// dependencies' compiler export data. Everything is stdlib: the repo's
// no-external-dependency rule applies to dancevet itself.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,ForTest,ImportMap,Error"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	if cfg.Tags != "" {
		args = append(args, "-tags", cfg.Tags)
	}
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %w", err)
	}

	exports := make(map[string]string)
	var roots []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.DepOnly || lp.Standard {
			continue
		}
		// Skip the synthetic "pkg.test" mains: their only file is a
		// generated _testmain.go.
		if strings.HasSuffix(lp.ImportPath, ".test") {
			continue
		}
		roots = append(roots, lp)
	}

	// When a package appears both plain and as its test variant
	// ("pkg [pkg.test]"), the variant's GoFiles are a superset — analyzing
	// both would duplicate every diagnostic in the non-test files.
	byBase := make(map[string]*listPackage)
	for _, lp := range roots {
		base := lp.ImportPath
		if i := strings.IndexByte(base, ' '); i >= 0 {
			base = base[:i]
		}
		if lp.ForTest != "" {
			base = lp.ForTest + "\x00" + lp.ImportPath // external _test packages stay distinct
		}
		if cur, ok := byBase[base]; !ok || len(lp.GoFiles) > len(cur.GoFiles) {
			byBase[base] = lp
		}
	}
	selected := make([]*listPackage, 0, len(byBase))
	for _, lp := range byBase {
		selected = append(selected, lp)
	}
	sort.Slice(selected, func(i, j int) bool { return selected[i].ImportPath < selected[j].ImportPath })

	fset := token.NewFileSet()
	shared := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range selected {
		pkg, err := typecheckListed(fset, lp, shared)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typecheckListed(fset *token.FileSet, lp *listPackage, shared *exportImporter) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{
		Importer: &mappedImporter{shared: shared, importMap: lp.ImportMap},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	// The import path go/types records is the plain path even for test
	// variants: export data self-references use it.
	base := lp.ImportPath
	if i := strings.IndexByte(base, ' '); i >= 0 {
		base = base[:i]
	}
	tpkg, err := conf.Check(base, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Dir:   lp.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// exportImporter resolves import paths through the compiler export data
// `go list -export` reported, via the stdlib gc importer.
type exportImporter struct {
	imp     types.Importer
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	e := &exportImporter{exports: exports}
	e.imp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := e.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return e
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.imp.Import(path)
}

// NewGoListImporter returns an importer that resolves arbitrary import
// paths (stdlib or module packages) by asking `go list -export` for
// compiler export data on demand. The analysistest fixture loader uses it
// for fixture imports like "context" and "strings".
func NewGoListImporter(fset *token.FileSet) (types.Importer, error) {
	g := &goListImporter{exports: make(map[string]string)}
	g.imp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := g.exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
	return g, nil
}

type goListImporter struct {
	imp     types.Importer
	exports map[string]string
}

func (g *goListImporter) Import(path string) (*types.Package, error) {
	if _, err := g.exportFile(path); err != nil {
		return nil, err
	}
	return g.imp.Import(path)
}

func (g *goListImporter) exportFile(path string) (string, error) {
	if f, ok := g.exports[path]; ok {
		return f, nil
	}
	cmd := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", "--", path)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("analysis: go list -export %s: %w", path, err)
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return "", fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if lp.Export != "" {
			g.exports[lp.ImportPath] = lp.Export
		}
	}
	f, ok := g.exports[path]
	if !ok {
		return "", fmt.Errorf("analysis: no export data for %q", path)
	}
	return f, nil
}

// mappedImporter applies one package's ImportMap (test variants import the
// "pkg [pkg.test]" builds of their dependencies) before delegating to the
// shared export importer. When a mapped variant has no export data the
// plain package is used instead — the only loss is symbols test files added.
type mappedImporter struct {
	shared    *exportImporter
	importMap map[string]string
}

func (m *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		if _, have := m.shared.exports[mapped]; have {
			if pkg, err := m.shared.Import(mapped); err == nil {
				return pkg, nil
			}
		}
	}
	return m.shared.Import(path)
}
