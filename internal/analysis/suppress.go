package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// suppressionPrefix is the marker dancevet honors in source comments:
//
//	//dancevet:ignore <analyzer>[,<analyzer>] <reason>
//
// mirroring staticcheck's lint:ignore shape. The directive suppresses the
// named analyzers' diagnostics on the directive's own line and, when the
// directive stands on a line of its own, on the next line as well.
// Flow-following analyzers (cachekey v2) additionally honor a directive at a
// join's origin: suppressing a helper's join where it is built also covers
// the findings its flows would create at downstream sinks
// (Pass.SuppressedAt).
const suppressionPrefix = "//dancevet:ignore"

// suppression is one parsed directive.
type suppression struct {
	analyzers []string // empty means malformed
	reason    string
	file      string
	line      int // line the directive appears on
	pos       token.Pos
}

// Suppresses reports whether the directive covers the named analyzer.
func (s *suppression) Suppresses(analyzer string) bool {
	for _, a := range s.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// parseSuppressions extracts every dancevet:ignore directive from the
// package's comments. Malformed directives (missing analyzer name, unknown
// analyzer, or missing reason) are returned separately as diagnostics — a
// suppression that silently fails to parse would un-suppress on refactor,
// so dancevet makes malformedness loud instead.
func parseSuppressions(fset *token.FileSet, files []*ast.File) (bySite map[string][]*suppression, malformed []Diagnostic) {
	bySite = make(map[string][]*suppression)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, suppressionPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, suppressionPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //dancevet:ignorefoo — not ours
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:     c.Pos(),
						Message: "malformed dancevet:ignore: want \"//dancevet:ignore <analyzer>[,<analyzer>] <reason>\" (the reason is mandatory)",
					})
					continue
				}
				s := &suppression{
					reason: strings.Join(fields[1:], " "),
					file:   pos.Filename,
					line:   pos.Line,
					pos:    c.Pos(),
				}
				ok := true
				for _, name := range strings.Split(fields[0], ",") {
					if ByName(name) == nil {
						malformed = append(malformed, Diagnostic{
							Pos:     c.Pos(),
							Message: fmt.Sprintf("dancevet:ignore names unknown analyzer %q", name),
						})
						ok = false
						continue
					}
					s.analyzers = append(s.analyzers, name)
				}
				if !ok {
					continue
				}
				// The directive covers its own line; a standalone directive
				// (no code before it on the line) also covers the next line.
				key := siteKey(pos.Filename, pos.Line)
				bySite[key] = append(bySite[key], s)
				if standalone(fset, f, c) {
					next := siteKey(pos.Filename, pos.Line+1)
					bySite[next] = append(bySite[next], s)
				}
			}
		}
	}
	return bySite, malformed
}

// standalone reports whether the comment is the first thing on its line.
func standalone(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	// If any node of the file starts earlier on the same line, the comment
	// trails code. Scanning declarations is enough: statements inside them
	// are covered by the declaration's extent.
	trailing := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || trailing {
			return false
		}
		np := fset.Position(n.Pos())
		ne := fset.Position(n.End())
		if np.Line > pos.Line {
			return false
		}
		if ne.Line < pos.Line {
			return false
		}
		// Node overlaps the comment's line; does a token start on it before
		// the comment column? Leaf nodes give the answer.
		if np.Line == pos.Line && np.Column < pos.Column {
			trailing = true
			return false
		}
		return true
	})
	return !trailing
}

func siteKey(file string, line int) string {
	return file + "\x00" + strconv.Itoa(line)
}
