package analysis_test

import (
	"testing"

	"github.com/dance-db/dance/internal/analysis"
	"github.com/dance-db/dance/internal/analysis/analysistest"
)

// Each fixture seeds a reproduction of the historical bug class its
// analyzer fossilizes (see DESIGN.md "Invariants & static analysis"); the
// sibling negative fixtures prove the analyzers stay quiet off their turf.

func TestDetfloat(t *testing.T) {
	td := analysistest.TestData()
	analysistest.Run(t, td, analysis.Detfloat, "detfloat/infotheory")
	analysistest.Run(t, td, analysis.Detfloat, "detfloat/web")
}

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Ctxflow, "ctxflow/internal/svc")
}

func TestLockguard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Lockguard, "lockguard/pricecache")
}

func TestCachekey(t *testing.T) {
	td := analysistest.TestData()
	analysistest.Run(t, td, analysis.Cachekey, "cachekey/search")
	analysistest.Run(t, td, analysis.Cachekey, "cachekey/web")
}

func TestErrsentinel(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Errsentinel, "errsentinel/client")
}
