package analysis_test

import (
	"testing"

	"github.com/dance-db/dance/internal/analysis"
	"github.com/dance-db/dance/internal/analysis/analysistest"
)

// Each fixture seeds a reproduction of the historical bug class its
// analyzer fossilizes (see DESIGN.md "Invariants & static analysis"); the
// sibling negative fixtures prove the analyzers stay quiet off their turf.

func TestDetfloat(t *testing.T) {
	td := analysistest.TestData()
	analysistest.Run(t, td, analysis.Detfloat, "detfloat/infotheory")
	analysistest.Run(t, td, analysis.Detfloat, "detfloat/web")
}

func TestCtxflow(t *testing.T) {
	td := analysistest.TestData()
	analysistest.Run(t, td, analysis.Ctxflow, "ctxflow/internal/svc")
	analysistest.Run(t, td, analysis.Ctxflow, "ctxflow/internal/edge")
}

func TestLockguard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Lockguard, "lockguard/pricecache")
}

func TestCachekey(t *testing.T) {
	td := analysistest.TestData()
	analysistest.Run(t, td, analysis.Cachekey, "cachekey/search")
	analysistest.Run(t, td, analysis.Cachekey, "cachekey/web")
	analysistest.Run(t, td, analysis.Cachekey, "cachekey/flow/offline")
}

func TestLockorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Lockorder, "lockorder/ab")
}

func TestWirecompat(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Wirecompat, "wirecompat/dance")
}

func TestErrsentinel(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.Errsentinel, "errsentinel/client")
}
