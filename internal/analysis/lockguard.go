package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Lockguard checks `// guarded by <mu>` field annotations: an annotated
// field may only be read with its mutex at least read-held and only written
// with it exclusively held, within the function being analyzed. This is the
// PR 1/PR 2 race class — the joingraph price memo was a bare map hit by
// every MCMC chain, and Dance's middleware state raced under concurrent
// Acquire — encoded so the next cache or service field added without
// synchronization fails CI instead of the race detector's dice roll.
//
// The analysis is a pragmatic linear walk, not a full flow analysis:
//
//   - lock state is tracked per access path (`s.mu` and `c.shards[i].mu`
//     are distinct guards) through if/else, switch, select, for and range,
//     merging branches conservatively (a lock held on only one arm counts
//     as not held after the join; a branch ending in return/panic does not
//     leak its state past the join).
//   - `defer mu.Unlock()` keeps the lock held for the rest of the function.
//   - function literals started with `go` are checked with *no* locks held
//     — the goroutine does not inherit the spawner's critical section.
//   - locally constructed values (x := &T{...} / var x T) are exempt until
//     published: constructors may initialize annotated fields freely.
//
// sync.RWMutex read locks satisfy reads only; writes require Lock.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc: "fields annotated `// guarded by <mu>` must be read with the mutex " +
		"(R)Locked and written with it exclusively Locked in the enclosing function",
	Run: runLockguard,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// lockState is the privilege held on one guard along the current path.
type lockState int

const (
	lockNone lockState = iota
	lockShared
	lockExcl
)

func runLockguard(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, guards: guards, fresh: map[types.Object]bool{}}
			w.walkStmt(fd.Body, entryState(fd, guards))
		}
	}
	return nil
}

// entryState builds a function's initial lock state. A method whose name
// ends in "Locked" declares the caller-holds-the-lock convention (the repo
// follows the runtime's xLocked idiom), so every guard is assumed
// exclusively held on the receiver for its body.
func entryState(fd *ast.FuncDecl, guards map[types.Object]string) state {
	st := state{locks: map[string]lockState{}}
	if !strings.HasSuffix(fd.Name.Name, "Locked") || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return st
	}
	names := fd.Recv.List[0].Names
	if len(names) == 0 {
		return st
	}
	recv := names[0].Name
	seen := map[string]bool{}
	for _, guard := range guards {
		if !seen[guard] {
			seen[guard] = true
			st.locks[recv+"\x00"+guard] = lockExcl
		}
	}
	return st
}

// collectGuards maps each annotated field object to its guard field name.
func collectGuards(pass *Pass) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardAnnotation(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// state is the lock privileges held along one control-flow path, keyed by
// "<base expression>\x00<guard field>".
type state struct {
	locks      map[string]lockState
	terminated bool
}

func (s state) clone() state {
	c := state{locks: make(map[string]lockState, len(s.locks)), terminated: s.terminated}
	for k, v := range s.locks {
		c.locks[k] = v
	}
	return c
}

// merge keeps, per guard, the weakest privilege of the two paths.
func merge(a, b state) state {
	out := state{locks: map[string]lockState{}}
	for k, v := range a.locks {
		if bv, ok := b.locks[k]; ok {
			if bv < v {
				v = bv
			}
			out.locks[k] = v
		}
	}
	return out
}

type lockWalker struct {
	pass   *Pass
	guards map[types.Object]string
	// fresh marks locally constructed, not-yet-published values whose
	// annotated fields may be touched lock-free (constructors).
	fresh map[types.Object]bool
}

// walkStmt interprets one statement, returning the post-state.
func (w *lockWalker) walkStmt(stmt ast.Stmt, st state) state {
	switch s := stmt.(type) {
	case nil:
		return st
	case *ast.BlockStmt:
		for _, inner := range s.List {
			st = w.walkStmt(inner, st)
		}
		return st
	case *ast.ExprStmt:
		return w.walkExpr(s.X, st, false)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			st = w.walkExpr(rhs, st, false)
		}
		if s.Tok == token.DEFINE {
			w.markFresh(s)
		}
		for _, lhs := range s.Lhs {
			st = w.walkExpr(lhs, st, true)
		}
		return st
	case *ast.IncDecStmt:
		return w.walkExpr(s.X, st, true)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					st = w.walkExpr(v, st, false)
				}
				// `var x T` declares a fresh, unshared value.
				for _, name := range vs.Names {
					if obj := w.pass.TypesInfo.Defs[name]; obj != nil {
						w.fresh[obj] = true
					}
				}
			}
		}
		return st
	case *ast.IfStmt:
		st = w.walkStmt(s.Init, st)
		st = w.walkExpr(s.Cond, st, false)
		thenSt := w.walkStmt(s.Body, st.clone())
		elseSt := st
		if s.Else != nil {
			elseSt = w.walkStmt(s.Else, st.clone())
		}
		switch {
		case thenSt.terminated && elseSt.terminated:
			st.terminated = true
			return st
		case thenSt.terminated:
			return elseSt
		case elseSt.terminated:
			return thenSt
		default:
			return merge(thenSt, elseSt)
		}
	case *ast.ForStmt:
		st = w.walkStmt(s.Init, st)
		st = w.walkExpr(s.Cond, st, false)
		body := w.walkStmt(s.Body, st.clone())
		w.walkStmt(s.Post, body)
		// The body may run zero times; lock effects inside do not survive.
		return st
	case *ast.RangeStmt:
		st = w.walkExpr(s.X, st, false)
		w.walkStmt(s.Body, st.clone())
		return st
	case *ast.SwitchStmt:
		st = w.walkStmt(s.Init, st)
		st = w.walkExpr(s.Tag, st, false)
		return w.walkCases(s.Body, st)
	case *ast.TypeSwitchStmt:
		st = w.walkStmt(s.Init, st)
		st = w.walkStmt(s.Assign, st)
		return w.walkCases(s.Body, st)
	case *ast.SelectStmt:
		return w.walkCases(s.Body, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = w.walkExpr(r, st, false)
		}
		st.terminated = true
		return st
	case *ast.BranchStmt:
		st.terminated = true
		return st
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at return: the lock stays held for the
		// remainder of this walk. Deferred closures are checked against the
		// current state without propagating their effects.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmt(lit.Body, st.clone())
		} else {
			for _, a := range s.Call.Args {
				st = w.walkExpr(a, st, false)
			}
			w.checkAccessExpr(s.Call.Fun, st, false)
		}
		return st
	case *ast.GoStmt:
		// A spawned goroutine does not hold the spawner's locks.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmt(lit.Body, state{locks: map[string]lockState{}})
		}
		for _, a := range s.Call.Args {
			st = w.walkExpr(a, st, false)
		}
		return st
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.SendStmt:
		st = w.walkExpr(s.Chan, st, false)
		return w.walkExpr(s.Value, st, false)
	default:
		return st
	}
}

func (w *lockWalker) walkCases(body *ast.BlockStmt, st state) state {
	var exits []state
	anyDefault := false
	for _, c := range body.List {
		entry := st.clone()
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				anyDefault = true
			}
			for _, e := range cc.List {
				entry = w.walkExpr(e, entry, false)
			}
			for _, s := range cc.Body {
				entry = w.walkStmt(s, entry)
			}
		case *ast.CommClause:
			if cc.Comm == nil {
				anyDefault = true
			}
			entry = w.walkStmt(cc.Comm, entry)
			for _, s := range cc.Body {
				entry = w.walkStmt(s, entry)
			}
		}
		if !entry.terminated {
			exits = append(exits, entry)
		}
	}
	if !anyDefault {
		exits = append(exits, st) // no case may match
	}
	if len(exits) == 0 {
		st.terminated = true
		return st
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = merge(out, e)
	}
	return out
}

// walkExpr checks accesses inside e and applies lock/unlock effects, in
// source order. write marks e itself as a write target.
func (w *lockWalker) walkExpr(e ast.Expr, st state, write bool) state {
	switch e := e.(type) {
	case nil:
		return st
	case *ast.CallExpr:
		for _, a := range e.Args {
			st = w.walkExpr(a, st, false)
		}
		if op, base, guard := w.lockOp(e); op != "" {
			key := base + "\x00" + guard
			switch op {
			case "Lock":
				st.locks[key] = lockExcl
			case "RLock":
				st.locks[key] = lockShared
			case "Unlock", "RUnlock":
				delete(st.locks, key)
			}
			return st
		}
		// A method call on a guarded struct may itself lock; we only check
		// direct field accesses, so just descend into the callee expression
		// for embedded accesses (e.g. m[s.f] handled above via Args).
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			st = w.walkExpr(sel.X, st, false)
		}
		if lit, ok := e.Fun.(*ast.FuncLit); ok {
			w.walkStmt(lit.Body, st.clone())
		}
		return st
	case *ast.FuncLit:
		// A literal not immediately invoked may run later under unknown
		// locking; check it against the current state without effects.
		w.walkStmt(e.Body, st.clone())
		return st
	case *ast.BinaryExpr:
		st = w.walkExpr(e.X, st, false)
		return w.walkExpr(e.Y, st, false)
	case *ast.UnaryExpr:
		// Taking the address of a guarded field leaks it; treat as write.
		return w.walkExpr(e.X, st, write || e.Op == token.AND)
	case *ast.ParenExpr:
		return w.walkExpr(e.X, st, write)
	case *ast.StarExpr:
		return w.walkExpr(e.X, st, write)
	case *ast.SelectorExpr:
		w.checkAccessExpr(e, st, write)
		return w.walkExpr(e.X, st, false)
	case *ast.IndexExpr:
		st = w.walkExpr(e.X, st, write)
		return w.walkExpr(e.Index, st, false)
	case *ast.SliceExpr:
		st = w.walkExpr(e.X, st, write)
		st = w.walkExpr(e.Low, st, false)
		st = w.walkExpr(e.High, st, false)
		return w.walkExpr(e.Max, st, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			st = w.walkExpr(el, st, false)
		}
		return st
	case *ast.KeyValueExpr:
		return w.walkExpr(e.Value, st, false)
	case *ast.TypeAssertExpr:
		return w.walkExpr(e.X, st, false)
	default:
		return st
	}
}

// lockOp recognizes <base>.<guard>.Lock/RLock/Unlock/RUnlock() and returns
// the operation, the base path and the guard field name.
func (w *lockWalker) lockOp(call *ast.CallExpr) (op, base, guard string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", ""
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", "", ""
	}
	return sel.Sel.Name, types.ExprString(ast.Unparen(inner.X)), inner.Sel.Name
}

// checkAccessExpr reports e when it accesses an annotated field without the
// required privilege.
func (w *lockWalker) checkAccessExpr(e ast.Expr, st state, write bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := w.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	guard, ok := w.guards[selection.Obj()]
	if !ok {
		return
	}
	base := ast.Unparen(sel.X)
	if id := rootIdent(base); id != nil {
		if obj := w.pass.ObjectOf(id); obj != nil && w.fresh[obj] {
			return // locally constructed, not yet shared (includes c.shards[i].m)
		}
	}
	key := types.ExprString(base) + "\x00" + guard
	held := st.locks[key]
	field := selection.Obj().Name()
	if write && held < lockExcl {
		w.pass.Reportf(sel.Pos(),
			"write to %s.%s, guarded by %s, without holding it exclusively "+
				"(%s.Lock; RLock is not enough for writes) — PR 1/PR 2 race class",
			types.ExprString(base), field, guard, guard)
		return
	}
	if !write && held < lockShared {
		w.pass.Reportf(sel.Pos(),
			"read of %s.%s, guarded by %s, without holding it "+
				"(%s.RLock or %s.Lock) — PR 1/PR 2 race class",
			types.ExprString(base), field, guard, guard, guard)
	}
}

// markFresh records LHS variables of a := definition whose RHS constructs a
// new value (composite literal, new(T), or a constructor-style call
// returning a pointer is *not* assumed fresh — it may return shared state).
func (w *lockWalker) markFresh(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.pass.TypesInfo.Defs[id]
		if obj == nil {
			continue
		}
		if constructsFresh(s.Rhs[i]) {
			w.fresh[obj] = true
		}
	}
}

// rootIdent resolves an access path (c.shards[i], (*p).f) to its leftmost
// identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func constructsFresh(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}
