package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeterminismCriticalPackages names the packages (by final import-path
// segment) whose outputs must be bit-reproducible per seed: the paper's
// estimates are only comparable across runs — and the columnar fast path
// only pinnable against the row path — if sampling and evaluation are
// deterministic. PR 1 found Correlation drifting in the last ulps because
// a conditional-entropy term was summed in map-iteration order.
var DeterminismCriticalPackages = map[string]bool{
	"infotheory": true,
	"sampling":   true,
	"search":     true,
	"workload":   true,
}

// Detfloat flags the nondeterminism sources that have already bitten DANCE
// inside determinism-critical packages:
//
//   - floating-point accumulation inside `range` over a map: float addition
//     is not associative and Go randomizes map order, so the same data can
//     produce different last-ulp sums on every run (the PR 1 Correlation
//     bug). Iterate keys in sorted or first-appearance order instead.
//   - the global math/rand source (rand.Intn, rand.Float64, rand.Shuffle,
//     …): it is seeded per process, not per request. Use
//     rand.New(rand.NewSource(seed)) so every chain and every candidate
//     draws from its own deterministic stream.
//   - time.Now: wall-clock input makes estimates unreproducible. Thread
//     timestamps in from the caller (cmd/ layers may read the clock).
var Detfloat = &Analyzer{
	Name: "detfloat",
	Doc: "flags map-iteration-order float accumulation, the global math/rand " +
		"source and time.Now in determinism-critical packages " +
		"(internal/infotheory, internal/sampling, internal/search, internal/workload)",
	Run: runDetfloat,
}

func runDetfloat(pass *Pass) error {
	if !DeterminismCriticalPackages[lastSegment(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			// Tests may deliberately exercise nondeterminism (the race and
			// determinism regression suites do).
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapRangeFloatAccum(pass, n)
			case *ast.CallExpr:
				checkNondetCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkMapRangeFloatAccum reports float accumulators mutated inside a
// range-over-map body when the accumulator outlives the loop.
func checkMapRangeFloatAccum(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch assign.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range assign.Lhs {
				if isLoopExternalFloat(pass, lhs, rng) {
					pass.Reportf(assign.Pos(),
						"floating-point accumulation into %s inside range over a map: "+
							"map iteration order is randomized and float addition is not associative, "+
							"so the sum differs between runs (PR 1 Correlation bug); "+
							"iterate keys in sorted or first-appearance order",
						types.ExprString(lhs))
				}
			}
		case token.ASSIGN:
			// s = s + x (and s = x + s) forms.
			for i, lhs := range assign.Lhs {
				if i >= len(assign.Rhs) {
					break
				}
				if !isLoopExternalFloat(pass, lhs, rng) {
					continue
				}
				if selfReferentialSum(pass, lhs, assign.Rhs[i]) {
					pass.Reportf(assign.Pos(),
						"floating-point accumulation into %s inside range over a map: "+
							"map iteration order is randomized and float addition is not associative, "+
							"so the sum differs between runs (PR 1 Correlation bug); "+
							"iterate keys in sorted or first-appearance order",
						types.ExprString(lhs))
				}
			}
		}
		return true
	})
}

// isLoopExternalFloat reports whether e is a float-typed lvalue declared
// outside the range body (a struct field, or a variable from an enclosing
// scope). Loop-local floats reset every iteration and cannot accumulate
// across the map's random order.
func isLoopExternalFloat(pass *Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.ObjectOf(e)
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Body.Pos() || obj.Pos() > rng.Body.End()
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true // fields, elements and pointees outlive the iteration
	}
	return false
}

// selfReferentialSum reports whether rhs is an arithmetic expression that
// mentions lhs (s = s + x).
func selfReferentialSum(pass *Pass, lhs, rhs ast.Expr) bool {
	bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	target := types.ExprString(ast.Unparen(lhs))
	found := false
	ast.Inspect(bin, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && types.ExprString(ast.Unparen(e)) == target {
			found = true
			return false
		}
		return true
	})
	return found
}

// seededRandConstructors are the math/rand package-level functions that do
// not touch the global source.
var seededRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *Rand
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods on *rand.Rand etc. are seeded by construction
	}
	switch f.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if !seededRandConstructors[f.Name()] {
			pass.Reportf(call.Pos(),
				"%s.%s draws from the process-global random source, which is not "+
					"deterministic per seed; use rand.New(rand.NewSource(seed)) and thread the *Rand through",
				lastSegment(f.Pkg().Path()), f.Name())
		}
	case "time":
		if f.Name() == "Now" {
			pass.Reportf(call.Pos(),
				"time.Now in a determinism-critical package makes estimates "+
					"unreproducible; take the timestamp as a parameter from the cmd/ layer")
		}
	}
}
