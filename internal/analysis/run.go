package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one positioned diagnostic from a named analyzer, after
// suppression filtering.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package, honors dancevet:ignore
// directives, and returns the surviving findings ordered by position.
// Malformed suppression directives are reported as findings of the
// pseudo-analyzer "suppress".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	seen := make(map[string]bool)
	add := func(name string, pos token.Position, msg string) {
		key := fmt.Sprintf("%s\x00%s\x00%d\x00%d\x00%s", name, pos.Filename, pos.Line, pos.Column, msg)
		if seen[key] {
			return // plain + test-variant loads can both cover a file
		}
		seen[key] = true
		findings = append(findings, Finding{Analyzer: name, Pos: pos, Message: msg})
	}
	for _, pkg := range pkgs {
		suppressions, malformed := parseSuppressions(pkg.Fset, pkg.Files)
		for _, d := range malformed {
			add("suppress", pkg.Fset.Position(d.Pos), d.Message)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Dir:       pkg.Dir,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diagnostics {
				pos := pkg.Fset.Position(d.Pos)
				if suppressed(suppressions, a.Name, pos) {
					continue
				}
				add(a.Name, pos, d.Message)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

func suppressed(bySite map[string][]*suppression, analyzer string, pos token.Position) bool {
	for _, s := range bySite[siteKey(pos.Filename, pos.Line)] {
		if s.Suppresses(analyzer) {
			return true
		}
	}
	return false
}
