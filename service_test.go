package dance_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	dance "github.com/dance-db/dance"
)

// serviceFixture wires the full remote topology of the acceptance test: an
// httptest-hosted marketplace, a middleware talking to it over HTTP, and a
// danced service (AcquireHandler) hosted on a second httptest server.
func serviceFixture(t *testing.T, seed int64) (*dance.AcquireClient, *dance.InMemoryMarket) {
	t.Helper()
	market, own := marketFixture(seed)
	marketSrv := httptest.NewServer(dance.Handler(market))
	t.Cleanup(marketSrv.Close)

	mw := dance.New(dance.NewMarketClient(marketSrv.URL), dance.Config{SampleRate: 0.9, SampleSeed: 4})
	mw.AddSource(own, nil)

	danced := httptest.NewServer(dance.AcquireHandler(mw))
	t.Cleanup(danced.Close)
	return dance.NewAcquireClient(danced.URL), market
}

// The acceptance flow: acquire a plan over HTTP, fetch it back by ID,
// execute it, and read the ledger.
func TestDancedAcquireExecuteEndToEnd(t *testing.T) {
	client, market := serviceFixture(t, 1)
	ctx := context.Background()

	plan, err := client.Acquire(ctx, dance.AcquireRequest{
		SourceAttrs: []string{"income"},
		TargetAttrs: []string{"riskband"},
		Budget:      1e9,
		Iterations:  40,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ID == "" || len(plan.Queries) == 0 {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.Est.Correlation <= 0 || plan.Est.Price <= 0 {
		t.Fatalf("estimates = %+v", plan.Est)
	}
	for _, q := range plan.Queries {
		if !strings.HasPrefix(q.SQL, "SELECT ") {
			t.Fatalf("query %q is not SQL-shaped", q.SQL)
		}
	}

	fetched, err := client.Plan(ctx, plan.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fetched.ID != plan.ID || len(fetched.Queries) != len(plan.Queries) {
		t.Fatalf("GET /v1/plans/{id} = %+v, want %+v", fetched, plan)
	}

	purchase, err := client.Execute(ctx, plan.ID)
	if err != nil {
		t.Fatal(err)
	}
	if purchase.JoinedRows == 0 {
		t.Fatal("executed purchase joined zero rows")
	}
	if purchase.Realized.Correlation <= 0 {
		t.Fatalf("realized correlation = %v", purchase.Realized.Correlation)
	}
	if purchase.TotalPrice <= 0 {
		t.Fatal("purchase should cost money")
	}
	// The marketplace's own books agree with what the service reports.
	if got := market.Ledger().TotalByKind("query"); got != purchase.TotalPrice {
		t.Fatalf("marketplace query ledger %v != purchase price %v", got, purchase.TotalPrice)
	}

	ledger, err := client.Ledger(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var sawSample, sawPurchase bool
	for _, e := range ledger.Entries {
		switch e.Kind {
		case "sample":
			sawSample = true
		case "purchase":
			sawPurchase = e.PlanID == plan.ID && e.Amount == purchase.TotalPrice
		}
	}
	if !sawSample || !sawPurchase {
		t.Fatalf("ledger misses charges: %+v", ledger)
	}
	if ledger.Total <= 0 {
		t.Fatal("ledger total should be positive")
	}
}

func TestDancedTopK(t *testing.T) {
	client, _ := serviceFixture(t, 2)
	ctx := context.Background()

	options, err := client.AcquireTopK(ctx, dance.AcquireRequest{
		SourceAttrs: []string{"income"},
		TargetAttrs: []string{"riskband"},
		Budget:      1e9,
		Iterations:  30,
		Seed:        3,
	}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(options) == 0 {
		t.Fatal("no options")
	}
	for i, o := range options {
		if o.Plan.ID == "" || len(o.Plan.Queries) == 0 {
			t.Fatalf("option %d incomplete: %+v", i, o)
		}
		if i > 0 && o.Score > options[i-1].Score+1e-12 {
			t.Fatal("options not sorted by score")
		}
	}
	// Every ranked plan is individually executable by ID.
	if _, err := client.Execute(ctx, options[0].Plan.ID); err != nil {
		t.Fatal(err)
	}
}

func TestDancedErrors(t *testing.T) {
	client, _ := serviceFixture(t, 3)
	ctx := context.Background()

	if _, err := client.Execute(ctx, "pl_does_not_exist"); err == nil ||
		!strings.Contains(err.Error(), "no plan") {
		t.Fatalf("unknown plan err = %v", err)
	}
	if _, err := client.Plan(ctx, "pl_does_not_exist"); err == nil {
		t.Fatal("unknown plan fetch should error")
	}
	// Infeasible request: budget no plan can meet. The 422 response maps
	// back onto the ErrInfeasible sentinel client-side.
	_, err := client.Acquire(ctx, dance.AcquireRequest{
		SourceAttrs: []string{"income"},
		TargetAttrs: []string{"riskband"},
		Budget:      1e-9,
		Iterations:  10,
		Seed:        1,
	})
	if err == nil || !strings.Contains(err.Error(), "no feasible") {
		t.Fatalf("infeasible err = %v", err)
	}
	if !errors.Is(err, dance.ErrInfeasible) {
		t.Fatalf("infeasible err %v must wrap dance.ErrInfeasible", err)
	}
	// Attribute nobody sells.
	if _, err := client.Acquire(ctx, dance.AcquireRequest{
		TargetAttrs: []string{"income", "does_not_exist"},
		Iterations:  10,
	}); err == nil {
		t.Fatal("unknown attribute should error")
	}
}

// swappableServiceFixture builds a danced service whose marketplace has a
// two-attribute overlap, so the MCMC walk has variants to chew on and a
// huge iteration budget keeps the search running until the deadline fires.
func swappableServiceFixture(t *testing.T) *dance.AcquireClient {
	t.Helper()
	src := dance.NewTable("a", dance.NewSchema(
		dance.Cat("k", dance.KindInt),
		dance.Num("x", dance.KindFloat),
	))
	b := dance.NewTable("b", dance.NewSchema(
		dance.Cat("k", dance.KindInt),
		dance.Cat("j1", dance.KindInt),
		dance.Cat("j2", dance.KindInt),
	))
	c := dance.NewTable("c", dance.NewSchema(
		dance.Cat("j1", dance.KindInt),
		dance.Cat("j2", dance.KindInt),
		dance.Cat("y", dance.KindString),
	))
	for k := int64(0); k < 30; k++ {
		src.AppendValues(dance.IntValue(k), dance.FloatValue(float64(k)))
		b.AppendValues(dance.IntValue(k), dance.IntValue(k%6), dance.IntValue(k%5))
	}
	for j1 := int64(0); j1 < 6; j1++ {
		for j2 := int64(0); j2 < 5; j2++ {
			c.AppendValues(dance.IntValue(j1), dance.IntValue(j2),
				dance.StringValue(string(rune('a'+(j1+j2)%4))))
		}
	}
	market := dance.NewMarketplace(nil)
	market.Register(b, nil)
	market.Register(c, nil)
	marketSrv := httptest.NewServer(dance.Handler(market))
	t.Cleanup(marketSrv.Close)

	mw := dance.New(dance.NewMarketClient(marketSrv.URL), dance.Config{SampleRate: 1, SampleSeed: 3})
	mw.AddSource(src, nil)
	danced := httptest.NewServer(dance.AcquireHandler(mw))
	t.Cleanup(danced.Close)
	return dance.NewAcquireClient(danced.URL)
}

// Acceptance: an acquisition that forces a sample-rate escalation bills
// only the delta — GET /v1/ledger shows one full-sample round followed by
// delta-only rounds, agreeing with the marketplace's own books.
func TestDancedLedgerShowsDeltaOnlyEscalation(t *testing.T) {
	market, own := marketFixture(9)
	marketSrv := httptest.NewServer(dance.Handler(market))
	t.Cleanup(marketSrv.Close)

	// Start almost unsampled: the joined sample is empty, quality 0, so a
	// β-constrained request is infeasible until the escalation (growth 50
	// → rate 1) buys the rest — as a delta.
	mw := dance.New(dance.NewMarketClient(marketSrv.URL), dance.Config{
		SampleRate: 0.02, SampleSeed: 4, RateGrowth: 50, MaxSampleRounds: 3,
	})
	mw.AddSource(own, nil)
	danced := httptest.NewServer(dance.AcquireHandler(mw))
	t.Cleanup(danced.Close)
	client := dance.NewAcquireClient(danced.URL)
	ctx := context.Background()

	plan, err := client.Acquire(ctx, dance.AcquireRequest{
		SourceAttrs: []string{"income"},
		TargetAttrs: []string{"riskband"},
		Beta:        0.2,
		Budget:      1e9,
		Iterations:  30,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Est.Quality < 0.2 {
		t.Fatalf("plan quality %v below β — escalation did not help", plan.Est.Quality)
	}

	ledger, err := client.Ledger(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var samples, deltas []dance.ServiceLedgerEntry
	for _, e := range ledger.Entries {
		switch e.Kind {
		case "sample":
			samples = append(samples, e)
		case "sample_delta":
			deltas = append(deltas, e)
		}
	}
	if len(samples) != 1 {
		t.Fatalf("want exactly one full-sample round, got %d (%+v)", len(samples), ledger.Entries)
	}
	if len(deltas) == 0 {
		t.Fatalf("no sample_delta entries — escalation re-bought full samples: %+v", ledger.Entries)
	}
	// Every post-initial round is delta-only, and the rates bracket the
	// escalation.
	for _, e := range deltas {
		if e.FromRate < samples[0].ToRate || e.ToRate != 1 {
			t.Fatalf("delta round rates (%v → %v) inconsistent with escalation", e.FromRate, e.ToRate)
		}
	}
	// The service's books agree with the marketplace's.
	if got, want := sumEntries(samples), market.Ledger().TotalByKind("sample"); got != want {
		t.Fatalf("service sample spend %v != marketplace %v", got, want)
	}
	if got, want := sumEntries(deltas), market.Ledger().TotalByKind("sample_delta"); got != want {
		t.Fatalf("service delta spend %v != marketplace %v", got, want)
	}
	// Total sample spend ≈ one full-rate round — strictly cheaper than the
	// two-plus full rounds the seed-era rebuild would have bought.
	total := sumEntries(samples) + sumEntries(deltas)
	if total >= 2*market.Ledger().TotalByKind("sample_delta") {
		// delta bought (0.02, 1] ≈ a full round; two full rounds would be
		// roughly double the delta spend.
		t.Fatalf("escalation spend %v not meaningfully cheaper than full rounds", total)
	}
}

func sumEntries(entries []dance.ServiceLedgerEntry) float64 {
	t := 0.0
	for _, e := range entries {
		t += e.Amount
	}
	return t
}

// Acceptance: a client-side deadline cancels a long search with
// context.DeadlineExceeded instead of hanging until the search drains.
func TestDancedClientDeadlineCancelsLongSearch(t *testing.T) {
	client := swappableServiceFixture(t)

	// Warm the offline phase so the deadline hits the search itself.
	if _, err := client.Acquire(context.Background(), dance.AcquireRequest{
		SourceAttrs: []string{"x"},
		TargetAttrs: []string{"y"},
		Iterations:  10,
		Seed:        5,
	}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.Acquire(ctx, dance.AcquireRequest{
		SourceAttrs: []string{"x"},
		TargetAttrs: []string{"y"},
		Iterations:  1 << 30, // far beyond what can run before the deadline
		Seed:        6,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("client deadline took %v to cancel the acquisition", elapsed)
	}
}

// The server-enforced timeout_ms deadline maps onto the search context too:
// the service answers 504 with the context error instead of hanging.
func TestDancedServerTimeoutMS(t *testing.T) {
	client := swappableServiceFixture(t)
	_, err := client.Acquire(context.Background(), dance.AcquireRequest{
		SourceAttrs: []string{"x"},
		TargetAttrs: []string{"y"},
		Iterations:  1 << 30,
		Seed:        7,
		TimeoutMS:   100,
	})
	if err == nil || !strings.Contains(err.Error(), "context deadline exceeded") {
		t.Fatalf("err = %v, want a deadline error from the service", err)
	}
}

// The policy redesign on the wire: GET /v1/policies lists the registry with
// param schemas, a request naming a policy gets its plan stamped with it,
// and every ledger entry the run incurs is attributed to that policy.
func TestDancedPoliciesAndLedgerAttribution(t *testing.T) {
	client, _ := serviceFixture(t, 6)
	ctx := context.Background()

	pols, err := client.Policies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(pols.Policies) < 3 {
		t.Fatalf("GET /v1/policies listed %d policies, want ≥ 3: %+v", len(pols.Policies), pols)
	}
	byName := map[string]dance.PolicyInfo{}
	for _, p := range pols.Policies {
		if p.Name == "" {
			t.Fatalf("unnamed policy in %+v", pols)
		}
		byName[p.Name] = p
	}
	if !byName["dance"].Default {
		t.Fatalf("dance not marked the default policy: %+v", pols)
	}
	tbyb, ok := byName["try-before-you-buy"]
	if !ok || len(tbyb.Params) == 0 {
		t.Fatalf("try-before-you-buy missing or paramless: %+v", tbyb)
	}

	plan, err := client.Acquire(ctx, dance.AcquireRequest{
		SourceAttrs:  []string{"income"},
		TargetAttrs:  []string{"riskband"},
		Budget:       1e9,
		Iterations:   40,
		Seed:         2,
		Policy:       "try-before-you-buy",
		PolicyParams: map[string]float64{"pilot_rate": 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Policy != "try-before-you-buy" {
		t.Fatalf("plan policy = %q, want try-before-you-buy", plan.Policy)
	}
	if _, err := client.Execute(ctx, plan.ID); err != nil {
		t.Fatal(err)
	}

	ledger, err := client.Ledger(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var sampleAttr, purchaseAttr bool
	for _, e := range ledger.Entries {
		switch e.Kind {
		case "sample", "sample_delta":
			if e.Policy == "try-before-you-buy" {
				sampleAttr = true
			}
		case "purchase":
			if e.PlanID == plan.ID && e.Policy == "try-before-you-buy" {
				purchaseAttr = true
			}
		}
	}
	if !sampleAttr || !purchaseAttr {
		t.Fatalf("ledger entries not attributed to the policy (sample=%v purchase=%v): %+v",
			sampleAttr, purchaseAttr, ledger.Entries)
	}
}

// Omitting the policy field keeps the pre-redesign wire behavior: the
// default dance policy plans the request, and the plan echoes it.
func TestDancedDefaultPolicyOmitted(t *testing.T) {
	client, _ := serviceFixture(t, 7)
	plan, err := client.Acquire(context.Background(), dance.AcquireRequest{
		SourceAttrs: []string{"income"},
		TargetAttrs: []string{"riskband"},
		Budget:      1e9,
		Iterations:  30,
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Policy != "dance" {
		t.Fatalf("omitted policy resolved to %q, want dance", plan.Policy)
	}
}
